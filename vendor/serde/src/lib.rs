//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the serde façade the workspace uses: the [`Serialize`] /
//! [`Deserialize`] traits, derive macros (from the sibling
//! `serde_derive` stand-in), and a self-describing [`Content`] tree that
//! `serde_json` renders to and parses from.
//!
//! The design deliberately collapses serde's serializer/visitor
//! double-dispatch into one intermediate [`Content`] value: every
//! serializable type lowers itself to `Content`, and every
//! deserializable type raises itself from `&Content`. This supports the
//! subset this workspace relies on — struct maps, externally and
//! internally tagged enums, field renames and `#[serde(default)]` —
//! with serde-compatible JSON on the wire.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Content>),
    /// An object; insertion order is preserved.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries, if this is an object.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value widened to `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::U64(v) => Some(*v as f64),
            Content::I64(v) => Some(*v as f64),
            Content::F64(v) => Some(*v),
            _ => None,
        }
    }
}

/// Looks up a key in map content (used by derived impls).
#[doc(hidden)]
pub fn __find<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// An error raised or lowered between typed values and [`Content`].
#[derive(Debug, Clone, PartialEq)]
pub struct ContentError(String);

impl ContentError {
    /// An arbitrary message.
    pub fn custom(msg: impl Into<String>) -> Self {
        ContentError(msg.into())
    }

    /// Type mismatch.
    pub fn expected(what: &str, context: &str) -> Self {
        ContentError(format!("expected {what} while deserializing {context}"))
    }

    /// A required field is absent.
    pub fn missing_field(field: &str, context: &str) -> Self {
        ContentError(format!("missing field {field:?} in {context}"))
    }

    /// An enum tag matched no variant.
    pub fn unknown_variant(variant: &str, context: &str) -> Self {
        ContentError(format!("unknown variant {variant:?} for {context}"))
    }
}

impl fmt::Display for ContentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ContentError {}

/// A type that can lower itself to [`Content`].
pub trait Serialize {
    /// Lowers `self` to the data model.
    fn to_content(&self) -> Content;
}

/// A type that can raise itself from [`Content`].
pub trait Deserialize: Sized {
    /// Raises a value from the data model.
    ///
    /// # Errors
    ///
    /// Returns [`ContentError`] on shape or range mismatches.
    fn from_content(content: &Content) -> Result<Self, ContentError>;
}

// ── primitive impls ─────────────────────────────────────────────────────

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, ContentError> {
        match content {
            Content::Bool(b) => Ok(*b),
            _ => Err(ContentError::expected("bool", "bool")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, ContentError> {
                match content {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| ContentError::custom(format!("{v} out of range"))),
                    _ => Err(ContentError::expected("unsigned integer", stringify!($t))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_content(&self) -> Content {
        Content::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_content(content: &Content) -> Result<Self, ContentError> {
        u64::from_content(content).and_then(|v| {
            usize::try_from(v).map_err(|_| ContentError::custom(format!("{v} out of range")))
        })
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = i64::from(*self);
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, ContentError> {
                let wide = match content {
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| ContentError::custom(format!("{v} out of range")))?,
                    Content::I64(v) => *v,
                    _ => return Err(ContentError::expected("integer", stringify!($t))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| ContentError::custom(format!("{wide} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, ContentError> {
        content
            .as_f64()
            .ok_or_else(|| ContentError::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, ContentError> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, ContentError> {
        content
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| ContentError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, ContentError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(ContentError::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, ContentError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(content: &Content) -> Result<Self, ContentError> {
        match content {
            Content::Seq(items) if items.len() == 2 => {
                Ok((A::from_content(&items[0])?, B::from_content(&items[1])?))
            }
            _ => Err(ContentError::expected("2-element array", "tuple")),
        }
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, ContentError> {
        Ok(content.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_content(&42u32.to_content()).unwrap(), 42);
        assert_eq!(i32::from_content(&(-3i32).to_content()).unwrap(), -3);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert_eq!(String::from_content(&"hi".to_content()).unwrap(), "hi");
        assert!(bool::from_content(&true.to_content()).unwrap());
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_content(&v.to_content()).unwrap(), v);
    }

    #[test]
    fn integers_widen_for_floats() {
        assert_eq!(f64::from_content(&Content::U64(4)).unwrap(), 4.0);
        assert_eq!(f64::from_content(&Content::I64(-4)).unwrap(), -4.0);
    }

    #[test]
    fn range_checks() {
        assert!(u8::from_content(&Content::U64(300)).is_err());
        assert!(u32::from_content(&Content::I64(-1)).is_err());
    }

    #[test]
    fn options_map_to_null() {
        assert_eq!(Option::<u32>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_content(&Content::U64(1)).unwrap(),
            Some(1)
        );
        assert_eq!(None::<u32>.to_content(), Content::Null);
    }

    #[test]
    fn find_locates_keys() {
        let map = vec![("a".to_string(), Content::U64(1))];
        assert!(__find(&map, "a").is_some());
        assert!(__find(&map, "b").is_none());
    }
}
