//! Unified observability for the IPSO engines.
//!
//! Three pieces, shared by every engine crate:
//!
//! * [`span`] — a low-overhead span tracer. Engines record *virtual-time*
//!   spans (the simulated clock the engines compute analytically) via
//!   [`record_span`] / [`VirtualSpan`], and *wall-clock* spans via the
//!   RAII [`WallSpan`] guard.
//! * [`metrics`] — a global registry of atomic counters, gauges and
//!   log₂-bucketed histograms.
//! * [`perfetto`] — a Chrome trace-event (Perfetto-loadable) JSON
//!   exporter over the recorded spans: one track per executor, `ph:"X"`
//!   duration events and `ph:"i"` instants.
//!
//! Everything is gated behind one global flag. When tracing is disabled
//! (the default) every instrumentation call reduces to a single relaxed
//! atomic load, so the engines pay essentially nothing; see the
//! `obs_overhead` bench in `crates/bench`.
//!
//! # Example
//!
//! ```
//! ipso_obs::set_enabled(true);
//! ipso_obs::reset();
//! ipso_obs::record_span("executor-0", "map", "mapreduce", 0.0, 1.5);
//! ipso_obs::counter_add("tasks_launched", 1);
//! let json = ipso_obs::perfetto::export_chrome_trace(&ipso_obs::take_events());
//! assert!(json.contains("\"ph\":\"X\""));
//! ipso_obs::set_enabled(false);
//! ```

use std::sync::atomic::{AtomicBool, Ordering};

pub mod metrics;
pub mod perfetto;
pub mod span;

pub use metrics::{
    counter_add, counter_value, gauge_add, gauge_set, gauge_value, histogram_record, reset_metrics,
    snapshot, MetricsSnapshot,
};
pub use perfetto::{export_chrome_trace, write_chrome_trace};
pub use span::{
    clear_events, record_instant, record_span, snapshot_events, take_events, SpanKind, TraceEvent,
    VirtualSpan, WallSpan,
};

/// The global instrumentation switch. Off by default.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns instrumentation on or off globally.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether instrumentation is currently enabled.
///
/// This is the only cost instrumented code pays when tracing is off: a
/// single relaxed atomic load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears all recorded spans and metrics (the enable flag is untouched).
pub fn reset() {
    span::clear_events();
    metrics::reset_metrics();
}

/// Spans and metric updates recorded inside one [`capture`] scope,
/// waiting to be [`merge`]d into the global recorder.
///
/// The records preserve recording order, so merging a set of captures in
/// a deterministic order (e.g. sweep-point index order) reproduces the
/// exact global state a sequential run would have produced — the
/// mechanism behind the parallel sweep runner's determinism guarantee.
#[derive(Debug, Default)]
#[must_use = "captured records are lost unless merged"]
pub struct LocalRecords {
    events: Vec<span::TraceEvent>,
    ops: Vec<metrics::MetricOp>,
}

impl LocalRecords {
    /// Number of captured span events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.ops.is_empty()
    }
}

/// Runs `f` with all instrumentation on this thread redirected into a
/// private buffer — no global lock on the recording path — and returns
/// `f`'s result together with the captured records.
///
/// Captures nest: an inner capture takes over recording and the outer
/// buffer resumes when it finishes. Spans must complete inside the scope
/// that opened them; a guard dropped after the scope records into
/// whatever recorder is active at drop time.
///
/// # Example
///
/// ```
/// ipso_obs::set_enabled(true);
/// ipso_obs::reset();
/// let (value, records) = ipso_obs::capture(|| {
///     ipso_obs::record_span("executor-0", "map", "mr", 0.0, 1.0);
///     42
/// });
/// assert_eq!(value, 42);
/// assert_eq!(records.event_count(), 1);
/// assert!(ipso_obs::snapshot_events().is_empty()); // not yet merged
/// ipso_obs::merge(records);
/// assert_eq!(ipso_obs::snapshot_events().len(), 1);
/// ipso_obs::set_enabled(false);
/// ```
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, LocalRecords) {
    struct Guard {
        prev_events: Option<Vec<span::TraceEvent>>,
        prev_ops: Option<Vec<metrics::MetricOp>>,
        armed: bool,
    }
    impl Drop for Guard {
        fn drop(&mut self) {
            // On panic inside `f`, still restore the previous recorder so
            // the thread is left in a consistent state.
            if self.armed {
                let _ = span::take_local_events(self.prev_events.take());
                let _ = metrics::take_local_ops(self.prev_ops.take());
            }
        }
    }
    let mut guard = Guard {
        prev_events: span::install_local_events(),
        prev_ops: metrics::install_local_ops(),
        armed: true,
    };
    let result = f();
    guard.armed = false;
    let records = LocalRecords {
        events: span::take_local_events(guard.prev_events.take()),
        ops: metrics::take_local_ops(guard.prev_ops.take()),
    };
    (result, records)
}

/// Flushes captured records into the global recorder: events are
/// appended in capture order, metric updates are replayed in capture
/// order. When called on a thread that is itself inside a [`capture`]
/// scope, the records flow into that scope's buffer instead, so nested
/// parallel sections compose.
pub fn merge(records: LocalRecords) {
    span::append_events(records.events);
    for op in records.ops {
        metrics::apply_op(op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_redirects_and_merge_replays_in_order() {
        let _guard = span::test_lock();
        set_enabled(true);
        reset();
        record_span("t", "outside-before", "c", 0.0, 1.0);
        let ((), records) = capture(|| {
            record_span("t", "inside", "c", 1.0, 2.0);
            counter_add("tasks", 2);
            gauge_set("depth", 3.0);
            gauge_set("depth", 7.0); // order-sensitive: last write wins
        });
        // Nothing visible globally until merged.
        assert_eq!(snapshot_events().len(), 1);
        assert_eq!(counter_value("tasks"), 0);
        merge(records);
        let events = take_events();
        set_enabled(false);
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].name, "inside");
        assert_eq!(counter_value("tasks"), 2);
        assert_eq!(gauge_value("depth"), 7.0);
        reset();
    }

    #[test]
    fn nested_captures_compose() {
        let _guard = span::test_lock();
        set_enabled(true);
        reset();
        let ((), outer) = capture(|| {
            record_span("t", "outer", "c", 0.0, 1.0);
            let ((), inner) = capture(|| {
                record_span("t", "inner", "c", 1.0, 2.0);
            });
            // Merging inside an active capture lands in that capture.
            merge(inner);
        });
        assert_eq!(outer.event_count(), 2);
        merge(outer);
        let events = take_events();
        set_enabled(false);
        assert_eq!(events[0].name, "outer");
        assert_eq!(events[1].name, "inner");
        reset();
    }

    #[test]
    fn cross_thread_captures_merge_deterministically() {
        let _guard = span::test_lock();
        set_enabled(true);
        reset();
        let mut handles = Vec::new();
        for i in 0..4u32 {
            handles.push(std::thread::spawn(move || {
                capture(|| {
                    record_span(
                        "t",
                        &format!("point-{i}"),
                        "c",
                        f64::from(i),
                        f64::from(i) + 1.0,
                    );
                    counter_add("points", 1);
                })
                .1
            }));
        }
        // Merge in point order regardless of completion order.
        for h in handles {
            merge(h.join().expect("worker"));
        }
        let events = take_events();
        set_enabled(false);
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["point-0", "point-1", "point-2", "point-3"]);
        assert_eq!(counter_value("points"), 4);
        reset();
    }

    #[test]
    fn disabled_by_default_and_toggleable() {
        // Other tests toggle the flag; just exercise the transitions.
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
