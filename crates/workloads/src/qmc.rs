//! Quasi-Monte-Carlo π estimation (Hadoop examples; paper Fig. 4a).
//!
//! Each map task evaluates a slice of a low-discrepancy Halton sequence
//! and counts points inside the unit quarter-circle; the reducer sums the
//! counts and produces the π estimate. There is essentially no serial
//! workload (`η → 1`) and no intermediate data, so the measured speedup
//! matches Gustafson's law — the paper's only purely benign MapReduce
//! case.

use ipso_mapreduce::{
    InputSplit, JobCostModel, JobSpec, Mapper, OutputScaling, Reducer, ScalingSweep,
};

/// Nominal samples per map task (drives the charged map time).
pub const SAMPLES_PER_TASK: u64 = 2_500_000_000;
/// Halton points actually evaluated per task.
const SAMPLE_POINTS: u64 = 20_000;
/// Nominal "bytes" per sample for cost accounting (the QMC kernel is
/// CPU-bound; one sample costs as much as streaming ~1.6 bytes).
const BYTES_PER_SAMPLE: u64 = 2;

/// The `index`-th element of the van der Corput sequence in `base`.
pub fn van_der_corput(mut index: u64, base: u64) -> f64 {
    let mut result = 0.0;
    let mut f = 1.0 / base as f64;
    while index > 0 {
        result += f * (index % base) as f64;
        index /= base;
        f /= base as f64;
    }
    result
}

/// One task's slice of the Halton sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QmcSlice {
    /// First sequence index of the slice.
    pub offset: u64,
    /// Points to evaluate.
    pub count: u64,
}

/// Counts Halton points falling inside the unit quarter circle.
#[derive(Debug, Clone, Copy, Default)]
pub struct QmcMapper;

impl Mapper for QmcMapper {
    type Input = QmcSlice;
    type Key = u32;
    type Value = (u64, u64);

    fn map(&self, slice: &QmcSlice, emit: &mut dyn FnMut(u32, (u64, u64))) {
        let mut inside = 0u64;
        for i in slice.offset..slice.offset + slice.count {
            // 2D Halton: bases 2 and 3.
            let x = van_der_corput(i + 1, 2);
            let y = van_der_corput(i + 1, 3);
            if x * x + y * y <= 1.0 {
                inside += 1;
            }
        }
        emit(0, (inside, slice.count));
    }

    fn output_scaling(&self) -> OutputScaling {
        OutputScaling::Saturating
    }
}

/// Sums partial counts into the π estimate.
#[derive(Debug, Clone, Copy, Default)]
pub struct QmcReducer;

impl Reducer for QmcReducer {
    type Key = u32;
    type Value = (u64, u64);
    type Output = f64;

    fn reduce(&self, _key: &u32, values: &[(u64, u64)], emit: &mut dyn FnMut(f64)) {
        let inside: u64 = values.iter().map(|v| v.0).sum();
        let total: u64 = values.iter().map(|v| v.1).sum();
        emit(4.0 * inside as f64 / total as f64);
    }
}

/// Cost calibration: pure compute, ~50 s per map task, negligible serial
/// work (a fraction of a second of reducer setup).
pub fn cost_model() -> JobCostModel {
    JobCostModel {
        map_rate: 100.0e6,
        shuffle_rate: 500.0e6,
        merge_rate: 500.0e6,
        reduce_rate: 500.0e6,
        seq_init: 2.0,
        serial_setup: 0.3,
    }
}

/// The job spec at scale-out degree `n`.
pub fn job_spec(n: u32) -> JobSpec {
    let mut spec = JobSpec::emr("qmc-pi", n);
    spec.cost = cost_model();
    spec
}

/// The `n` fixed-time slices. Each task nominally evaluates
/// [`SAMPLES_PER_TASK`] samples but executes a deterministic
/// 20 000-point slice.
pub fn make_splits(n: u32) -> Vec<InputSplit<QmcSlice>> {
    (0..n)
        .map(|task| {
            let slice = QmcSlice {
                offset: u64::from(task) * SAMPLE_POINTS,
                count: SAMPLE_POINTS,
            };
            InputSplit::new(
                vec![slice],
                SAMPLE_POINTS * BYTES_PER_SAMPLE,
                SAMPLES_PER_TASK * BYTES_PER_SAMPLE,
            )
        })
        .collect()
}

/// Runs the full paper sweep for QMC-Pi.
pub fn sweep(ns: &[u32]) -> ScalingSweep {
    ScalingSweep::run(
        ns,
        &QmcMapper,
        &QmcReducer,
        job_spec,
        make_splits,
        make_splits,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn van_der_corput_known_values() {
        // Base 2: 1 → 0.5, 2 → 0.25, 3 → 0.75.
        assert!((van_der_corput(1, 2) - 0.5).abs() < 1e-12);
        assert!((van_der_corput(2, 2) - 0.25).abs() < 1e-12);
        assert!((van_der_corput(3, 2) - 0.75).abs() < 1e-12);
        // Base 3: 1 → 1/3, 2 → 2/3.
        assert!((van_der_corput(1, 3) - 1.0 / 3.0).abs() < 1e-12);
        assert!((van_der_corput(2, 3) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pi_estimate_is_accurate() {
        use ipso_mapreduce::run_scale_out;
        let run = run_scale_out(&job_spec(4), &QmcMapper, &QmcReducer, &make_splits(4));
        assert_eq!(run.output.len(), 1);
        let pi = run.output[0];
        assert!(
            (pi - std::f64::consts::PI).abs() < 0.01,
            "pi estimate = {pi}"
        );
    }

    #[test]
    fn eta_is_near_one() {
        let sweep = sweep(&[1, 2, 4]);
        let m = &sweep.measurements()[0];
        let eta = m.seq_parallel_work / (m.seq_parallel_work + m.seq_serial_work);
        assert!(eta > 0.97, "eta = {eta}");
    }

    #[test]
    fn speedup_matches_gustafson() {
        let sweep = sweep(&[1, 2, 4, 8, 16, 32, 64]);
        let curve = sweep.speedup_curve().unwrap();
        let s64 = curve.points().last().unwrap().speedup;
        // Near-linear: within 15% of perfect scaling.
        assert!(s64 > 0.85 * 64.0, "S(64) = {s64}");
    }
}
