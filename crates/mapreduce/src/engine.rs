//! The MapReduce execution engine.
//!
//! Two execution modes, matching the paper's Section IV definitions:
//!
//! * [`run_scale_out`] — `n` map tasks in parallel on `n` units with a
//!   synchronization barrier, then a single reducer;
//! * [`run_sequential`] — the sequential job execution model defining the
//!   speedup numerator: the same tasks run back-to-back on one unit,
//!   followed by the same merge.
//!
//! Both modes *really execute* the user's map/combine/reduce functions
//! over the sample records and produce real outputs; only wall-clock time
//! is synthetic, charged from nominal data volumes via the cost model.

use std::collections::BTreeMap;

use ipso_cluster::{run_wave_schedule, JobTrace, PhaseTimes, RunConfig, StragglerModel};
use ipso_sim::SimRng;

use crate::api::{Mapper, OutputScaling, Reducer};
use crate::config::JobSpec;
use crate::split::InputSplit;

/// The result of one job execution.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRun<O> {
    /// Timing trace (phases, tasks, scale-out overheads).
    pub trace: JobTrace,
    /// The real output records produced by the reducer, in key order.
    pub output: Vec<O>,
    /// Nominal bytes entering the reduce phase.
    pub reduce_input_bytes: u64,
}

/// The per-task result of the (real) map-side computation.
struct MappedTask<K, V> {
    /// Combined key/value pairs, grouped by key.
    groups: BTreeMap<K, Vec<V>>,
    /// Nominal post-combine output bytes.
    nominal_out_bytes: u64,
}

/// Runs the map + combine side of one task for real.
fn execute_map_task<M>(mapper: &M, split: &InputSplit<M::Input>) -> MappedTask<M::Key, M::Value>
where
    M: Mapper,
{
    use crate::api::Sizeable;

    let mut pairs: Vec<(M::Key, M::Value)> = Vec::new();
    for record in &split.records {
        mapper.map(record, &mut |k, v| pairs.push((k, v)));
    }
    // Group by key (the map-side sort), then combine.
    let mut groups: BTreeMap<M::Key, Vec<M::Value>> = BTreeMap::new();
    for (k, v) in pairs {
        groups.entry(k).or_default().push(v);
    }
    let mut combined: BTreeMap<M::Key, Vec<M::Value>> = BTreeMap::new();
    let mut sample_out_bytes: u64 = 0;
    for (k, vs) in groups {
        let vs = mapper.combine(&k, vs);
        for v in &vs {
            sample_out_bytes += k.size_bytes() + v.size_bytes();
        }
        combined.insert(k, vs);
    }
    let nominal_out_bytes = match mapper.output_scaling() {
        OutputScaling::Proportional => (sample_out_bytes as f64 * split.scale_up()).round() as u64,
        OutputScaling::Saturating => sample_out_bytes,
    };
    MappedTask {
        groups: combined,
        nominal_out_bytes,
    }
}

/// Merges all tasks' groups and runs the reducer for real.
fn execute_reduce<R>(reducer: &R, tasks: Vec<MappedTask<R::Key, R::Value>>) -> (Vec<R::Output>, u64)
where
    R: Reducer,
{
    let mut merged: BTreeMap<R::Key, Vec<R::Value>> = BTreeMap::new();
    let mut reduce_input_bytes: u64 = 0;
    for t in tasks {
        reduce_input_bytes += t.nominal_out_bytes;
        for (k, mut vs) in t.groups {
            merged.entry(k).or_default().append(&mut vs);
        }
    }
    let mut output = Vec::new();
    for (k, vs) in &merged {
        reducer.reduce(k, vs, &mut |o| output.push(o));
    }
    (output, reduce_input_bytes)
}

/// Runs the job scaled out over `splits.len()` parallel tasks.
///
/// The trace records:
///
/// * `phases.map` — the slowest task (barrier synchronization);
/// * `phases.shuffle/merge/reduce` — the serial merging portion, with the
///   shuffle paying the network incast penalty and the merge paying the
///   memory spill multiplier;
/// * `scale_out_overhead` — job setup, dispatch serialization and barrier
///   skew beyond the slowest task: the measured `Wo(n)`.
///
/// # Panics
///
/// Panics if `splits` is empty, the split count exceeds the cluster's
/// slots, or the spec fails validation.
pub fn run_scale_out<M, R>(
    spec: &JobSpec,
    mapper: &M,
    reducer: &R,
    splits: &[InputSplit<M::Input>],
) -> JobRun<R::Output>
where
    M: Mapper,
    R: Reducer<Key = M::Key, Value = M::Value>,
{
    assert!(!splits.is_empty(), "scale-out run needs at least one split");
    spec.validate().expect("invalid job spec");
    let slots = spec.cluster.total_slots() as usize;
    assert!(
        splits.len() <= slots,
        "one container per unit: {} splits exceed {} slots",
        splits.len(),
        slots
    );
    let n = splits.len() as u32;
    let mut rng = SimRng::seed_from(spec.seed ^ u64::from(n));

    // Real map-side computation.
    let mapped: Vec<MappedTask<M::Key, M::Value>> =
        splits.iter().map(|s| execute_map_task(mapper, s)).collect();

    // Nominal task durations with straggler noise.
    let durations: Vec<f64> = splits
        .iter()
        .map(|s| spec.cost.map_time(s.nominal_bytes) * spec.straggler.multiplier(&mut rng))
        .collect();
    let schedule = run_wave_schedule(&durations, slots.min(splits.len()), &spec.scheduler);
    let max_task = schedule.max_task_duration();

    // Serial merging portion. The shuffle is charged at the reducer's
    // service rate, as in the sequential execution: the paper inspected
    // the shuffle stage for scale-out-induced discrepancies and found
    // them negligible for the single-reducer MapReduce cases (the
    // network-level incast model lives in `ipso_cluster::NetworkModel`
    // and is exercised by the Spark engine's m-to-m shuffles).
    let total_intermediate: u64 = mapped.iter().map(|t| t.nominal_out_bytes).sum();
    let shuffle = if spec.pipelined_shuffle {
        // Slow-start shuffle: the reducer's transfer server ingests each
        // task's output when that task completes; only the portion that
        // outlasts the map barrier remains on the critical path. The FIFO
        // server captures the queueing effect at the single reducer.
        let mut server = ipso_sim::FifoServer::new();
        let mut finish = ipso_sim::SimTime::ZERO;
        for (record, task) in schedule.records.iter().zip(&mapped) {
            let service = spec.cost.shuffle_time(task.nominal_out_bytes);
            let grant = server.submit(ipso_sim::SimTime::from_secs(record.end), service);
            finish = finish.max(grant.finish);
        }
        (finish.as_secs() - schedule.makespan).max(0.0)
    } else {
        spec.cost.shuffle_time(total_intermediate)
    };
    let slowdown = spec.reducer_memory.slowdown(total_intermediate);
    let merge = spec.cost.serial_setup + spec.cost.merge_time(total_intermediate) * slowdown;

    let (output, reduce_input_bytes) = execute_reduce(reducer, mapped);
    let reduce = spec.cost.reduce_time(reduce_input_bytes) * slowdown;

    // Scale-out-only overheads: extra job setup versus the sequential
    // environment, plus the dispatch-induced stretch of the split phase.
    let setup_extra = (spec.scheduler.job_setup - spec.cost.seq_init).max(0.0);
    let barrier_stretch = (schedule.makespan - max_task).max(0.0);

    if ipso_obs::enabled() {
        record_scale_out_trace(
            spec,
            splits,
            &durations,
            &schedule,
            total_intermediate,
            shuffle,
            merge,
            reduce,
            setup_extra + barrier_stretch,
        );
    }

    let trace = JobTrace {
        job: spec.name.clone(),
        n,
        phases: PhaseTimes {
            init: spec.cost.seq_init,
            map: max_task,
            shuffle,
            merge,
            reduce,
        },
        tasks: schedule.records,
        scale_out_overhead: setup_extra + barrier_stretch,
        config: Some(RunConfig {
            scheduler: spec.scheduler,
            straggler: spec.straggler,
            seed: spec.seed,
        }),
    };
    JobRun {
        trace,
        output,
        reduce_input_bytes,
    }
}

/// Emits the scale-out run's timeline and metrics into `ipso_obs`.
///
/// The timeline places the init span at virtual time zero, the split
/// phase (and its per-executor task spans) right after it, and the
/// serial shuffle/merge/reduce phases behind the barrier. Tasks whose
/// straggler multiplier reached the severe threshold get an instant
/// marker on their executor's track.
#[allow(clippy::too_many_arguments)]
fn record_scale_out_trace<I>(
    spec: &JobSpec,
    splits: &[InputSplit<I>],
    durations: &[f64],
    schedule: &ipso_cluster::TaskSchedule,
    total_intermediate: u64,
    shuffle: f64,
    merge: f64,
    reduce: f64,
    overhead: f64,
) {
    let t0 = spec.cost.seq_init;
    ipso_obs::record_span("driver", "init", "mapreduce", 0.0, t0);
    ipso_obs::record_span("driver", "map", "mapreduce", t0, t0 + schedule.makespan);
    for (i, record) in schedule.records.iter().enumerate() {
        let track = format!("executor-{}", record.executor);
        ipso_obs::record_span(
            &track,
            &format!("task-{}", record.task_id),
            "mapreduce",
            t0 + record.start,
            t0 + record.end,
        );
        let nominal = spec.cost.map_time(splits[i].nominal_bytes);
        if nominal > 0.0 && durations[i] / nominal >= StragglerModel::SEVERE_MULTIPLIER {
            ipso_obs::record_instant(&track, "straggler", "mapreduce", t0 + record.end);
        }
    }
    let barrier = t0 + schedule.makespan;
    ipso_obs::record_span("driver", "shuffle", "mapreduce", barrier, barrier + shuffle);
    ipso_obs::record_span(
        "driver",
        "merge",
        "mapreduce",
        barrier + shuffle,
        barrier + shuffle + merge,
    );
    ipso_obs::record_span(
        "driver",
        "reduce",
        "mapreduce",
        barrier + shuffle + merge,
        barrier + shuffle + merge + reduce,
    );
    ipso_obs::counter_add("mapreduce.jobs", 1);
    ipso_obs::counter_add("mapreduce.tasks_launched", durations.len() as u64);
    ipso_obs::counter_add("mapreduce.shuffle_bytes", total_intermediate);
    ipso_obs::gauge_add("overhead.scheduling_s", overhead);
}

/// Runs the paper's sequential job execution model: all tasks
/// back-to-back on one processing unit, then the merge. No dispatch
/// overhead, no incast, no stragglers (the expectation is charged via the
/// straggler model's mean multiplier so workloads stay calibrated).
///
/// # Panics
///
/// Panics if `splits` is empty or the spec fails validation.
pub fn run_sequential<M, R>(
    spec: &JobSpec,
    mapper: &M,
    reducer: &R,
    splits: &[InputSplit<M::Input>],
) -> JobRun<R::Output>
where
    M: Mapper,
    R: Reducer<Key = M::Key, Value = M::Value>,
{
    assert!(
        !splits.is_empty(),
        "sequential run needs at least one split"
    );
    spec.validate().expect("invalid job spec");
    let n = splits.len() as u32;

    let mapped: Vec<MappedTask<M::Key, M::Value>> =
        splits.iter().map(|s| execute_map_task(mapper, s)).collect();

    let mean_mult = spec.straggler.mean_multiplier();
    let map_total: f64 = splits
        .iter()
        .map(|s| spec.cost.map_time(s.nominal_bytes) * mean_mult)
        .sum();

    let total_intermediate: u64 = mapped.iter().map(|t| t.nominal_out_bytes).sum();
    let shuffle = spec.cost.shuffle_time(total_intermediate);
    let slowdown = spec.reducer_memory.slowdown(total_intermediate);
    let merge = spec.cost.serial_setup + spec.cost.merge_time(total_intermediate) * slowdown;

    let (output, reduce_input_bytes) = execute_reduce(reducer, mapped);
    let reduce = spec.cost.reduce_time(reduce_input_bytes) * slowdown;

    let trace = JobTrace {
        job: spec.name.clone(),
        n,
        phases: PhaseTimes {
            init: spec.cost.seq_init,
            map: map_total,
            shuffle,
            merge,
            reduce,
        },
        tasks: Vec::new(),
        scale_out_overhead: 0.0,
        config: Some(RunConfig {
            scheduler: spec.scheduler,
            straggler: spec.straggler,
            seed: spec.seed,
        }),
    };
    JobRun {
        trace,
        output,
        reduce_input_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{OutputScaling, Sizeable};

    /// A sort-style identity job over u64 records.
    struct IdMap;
    impl Mapper for IdMap {
        type Input = u64;
        type Key = u64;
        type Value = u64;
        fn map(&self, input: &u64, emit: &mut dyn FnMut(u64, u64)) {
            emit(*input, *input);
        }
    }
    struct IdReduce;
    impl Reducer for IdReduce {
        type Key = u64;
        type Value = u64;
        type Output = u64;
        fn reduce(&self, key: &u64, values: &[u64], emit: &mut dyn FnMut(u64)) {
            for _ in values {
                emit(*key);
            }
        }
    }

    /// A counting job with a saturating combiner.
    struct CountMap;
    impl Mapper for CountMap {
        type Input = u64;
        type Key = u64;
        type Value = u64;
        fn map(&self, input: &u64, emit: &mut dyn FnMut(u64, u64)) {
            emit(input % 10, 1);
        }
        fn combine(&self, _key: &u64, values: Vec<u64>) -> Vec<u64> {
            vec![values.iter().sum()]
        }
        fn output_scaling(&self) -> OutputScaling {
            OutputScaling::Saturating
        }
    }
    struct SumReduce;
    impl Reducer for SumReduce {
        type Key = u64;
        type Value = u64;
        type Output = (u64, u64);
        fn reduce(&self, key: &u64, values: &[u64], emit: &mut dyn FnMut((u64, u64))) {
            emit((*key, values.iter().sum()));
        }
    }

    fn splits(n: u32, records_per: u64) -> Vec<InputSplit<u64>> {
        (0..n)
            .map(|i| {
                let records: Vec<u64> = (0..records_per)
                    .map(|j| (u64::from(i) * records_per + j) % 997)
                    .collect();
                let bytes = records.iter().map(Sizeable::size_bytes).sum::<u64>();
                InputSplit::new(records, bytes, bytes * 1000)
            })
            .collect()
    }

    #[test]
    fn identity_job_outputs_sorted_multiset() {
        let spec = JobSpec::emr("sort", 4);
        let run = run_scale_out(&spec, &IdMap, &IdReduce, &splits(4, 100));
        assert_eq!(run.output.len(), 400);
        assert!(
            run.output.windows(2).all(|w| w[0] <= w[1]),
            "output must be sorted"
        );
        // Identical multiset as inputs.
        let mut inputs: Vec<u64> = splits(4, 100).into_iter().flat_map(|s| s.records).collect();
        inputs.sort_unstable();
        assert_eq!(run.output, inputs);
    }

    #[test]
    fn sequential_and_parallel_produce_identical_output() {
        let spec = JobSpec::emr("count", 3);
        let par = run_scale_out(&spec, &CountMap, &SumReduce, &splits(3, 500));
        let seq = run_sequential(&spec, &CountMap, &SumReduce, &splits(3, 500));
        assert_eq!(par.output, seq.output);
        // All 10 residue classes, each with 150 total.
        assert_eq!(par.output.len(), 10);
        assert_eq!(par.output.iter().map(|(_, c)| c).sum::<u64>(), 1500);
    }

    #[test]
    fn speedup_numerator_exceeds_denominator() {
        let spec = JobSpec::emr("sort", 8);
        let s = splits(8, 200);
        let par = run_scale_out(&spec, &IdMap, &IdReduce, &s);
        let seq = run_sequential(&spec, &IdMap, &IdReduce, &s);
        // Sequential map is the sum; parallel map is roughly one task.
        assert!(seq.trace.phases.map > 6.0 * par.trace.phases.map);
        assert!(seq.trace.phases.map < 9.0 * par.trace.phases.map);
    }

    #[test]
    fn proportional_scaling_amplifies_intermediate_bytes() {
        let spec = JobSpec::emr("sort", 2);
        let s = splits(2, 100);
        let run = run_scale_out(&spec, &IdMap, &IdReduce, &s);
        // Sample is 1/1000 of nominal: intermediate must scale up ~1000×.
        let sample: u64 = 2 * 100 * 16;
        assert!(run.reduce_input_bytes > 900 * sample / 2);
    }

    #[test]
    fn saturating_scaling_keeps_intermediate_small() {
        let spec = JobSpec::emr("count", 2);
        let run = run_scale_out(&spec, &CountMap, &SumReduce, &splits(2, 1000));
        // Post-combine: ≤ 10 keys per task, 16 bytes each.
        assert!(run.reduce_input_bytes <= 2 * 10 * 16);
    }

    #[test]
    fn scale_out_overhead_is_recorded() {
        let spec = JobSpec::emr("sort", 8);
        let run = run_scale_out(&spec, &IdMap, &IdReduce, &splits(8, 50));
        assert!(run.trace.scale_out_overhead > 0.0);
        let seq = run_sequential(&spec, &IdMap, &IdReduce, &splits(8, 50));
        assert_eq!(seq.trace.scale_out_overhead, 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = JobSpec::emr("sort", 4);
        let a = run_scale_out(&spec, &IdMap, &IdReduce, &splits(4, 100));
        let b = run_scale_out(&spec, &IdMap, &IdReduce, &splits(4, 100));
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn different_seeds_change_stragglers() {
        let mut spec = JobSpec::emr("sort", 4);
        let a = run_scale_out(&spec, &IdMap, &IdReduce, &splits(4, 100));
        spec.seed = 7;
        let b = run_scale_out(&spec, &IdMap, &IdReduce, &splits(4, 100));
        assert_ne!(a.trace.phases.map, b.trace.phases.map);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn more_splits_than_slots_rejected() {
        let spec = JobSpec::emr("sort", 2);
        let _ = run_scale_out(&spec, &IdMap, &IdReduce, &splits(3, 10));
    }

    #[test]
    #[should_panic(expected = "at least one split")]
    fn empty_splits_rejected() {
        let spec = JobSpec::emr("sort", 2);
        let _ = run_scale_out(&spec, &IdMap, &IdReduce, &[]);
    }
}

#[cfg(test)]
mod pipelined_shuffle_tests {
    use super::*;
    use crate::api::{Mapper, Reducer};

    struct IdMap;
    impl Mapper for IdMap {
        type Input = u64;
        type Key = u64;
        type Value = u64;
        fn map(&self, input: &u64, emit: &mut dyn FnMut(u64, u64)) {
            emit(*input, *input);
        }
    }
    struct IdReduce;
    impl Reducer for IdReduce {
        type Key = u64;
        type Value = u64;
        type Output = u64;
        fn reduce(&self, key: &u64, values: &[u64], emit: &mut dyn FnMut(u64)) {
            for _ in values {
                emit(*key);
            }
        }
    }

    fn splits(n: u32) -> Vec<InputSplit<u64>> {
        (0..n)
            .map(|i| {
                let records: Vec<u64> = (0..64).map(|j| u64::from(i) * 64 + j).collect();
                InputSplit::new(records, 64 * 8, 128 * 1024 * 1024)
            })
            .collect()
    }

    #[test]
    fn pipelining_shrinks_the_visible_shuffle() {
        let mut plain = JobSpec::emr("sort", 16);
        plain.pipelined_shuffle = false;
        let mut piped = plain.clone();
        piped.pipelined_shuffle = true;
        let s = splits(16);
        let a = run_scale_out(&plain, &IdMap, &IdReduce, &s);
        let b = run_scale_out(&piped, &IdMap, &IdReduce, &s);
        assert!(
            b.trace.phases.shuffle < a.trace.phases.shuffle,
            "pipelined {} vs barrier {}",
            b.trace.phases.shuffle,
            a.trace.phases.shuffle
        );
        // Outputs are identical either way — pipelining is timing-only.
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn pipelined_shuffle_never_negative_and_bounded_by_total() {
        let mut spec = JobSpec::emr("sort", 8);
        spec.pipelined_shuffle = true;
        let run = run_scale_out(&spec, &IdMap, &IdReduce, &splits(8));
        let total = spec.cost.shuffle_time(run.reduce_input_bytes);
        assert!(run.trace.phases.shuffle >= 0.0);
        assert!(run.trace.phases.shuffle <= total + 1e-9);
    }

    #[test]
    fn queueing_effect_appears_when_transfers_outpace_the_reducer() {
        // Make the reducer's shuffle service very slow: transfers queue
        // and the remainder after the barrier approaches the full total.
        let mut spec = JobSpec::emr("sort", 8);
        spec.pipelined_shuffle = true;
        spec.cost.shuffle_rate = 1.0e6; // 1 MB/s reducer ingest
        let run = run_scale_out(&spec, &IdMap, &IdReduce, &splits(8));
        let total = spec.cost.shuffle_time(run.reduce_input_bytes);
        // Nearly nothing could be hidden behind the (short) map phase.
        assert!(run.trace.phases.shuffle > 0.9 * total - run.trace.phases.map - 1.0);
    }
}
