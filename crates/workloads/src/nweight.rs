//! NWeight (HiBench Spark graph benchmark; paper Figs. 9–10).
//!
//! NWeight computes, for each vertex, the aggregated weights of its
//! n-hop neighbourhood (weights multiply along paths and sum across
//! paths). The real kernel ([`nweight_hop`], [`nweight`]) performs the
//! exact computation on generated graphs; [`job`] mirrors the benchmark's
//! shuffle-heavy per-hop stage structure.

use std::collections::BTreeMap;

use ipso_spark::{SparkJobSpec, StageSpec};

use crate::datagen::Edge;

/// Per-vertex weighted neighbourhood: `weights[v]` maps each reachable
/// vertex to its accumulated path weight.
pub type Neighbourhoods = BTreeMap<u32, BTreeMap<u32, f64>>;

/// The 1-hop neighbourhoods directly induced by the edge list.
pub fn one_hop(edges: &[Edge]) -> Neighbourhoods {
    let mut hoods: Neighbourhoods = BTreeMap::new();
    for e in edges {
        *hoods.entry(e.src).or_default().entry(e.dst).or_insert(0.0) += e.weight;
    }
    hoods
}

/// Expands neighbourhoods by one hop: path weights multiply, parallel
/// paths sum, and paths returning to the source are dropped (as in the
/// benchmark's definition).
pub fn nweight_hop(current: &Neighbourhoods, base: &Neighbourhoods) -> Neighbourhoods {
    let mut next: Neighbourhoods = BTreeMap::new();
    for (&src, reachable) in current {
        let out = next.entry(src).or_default();
        for (&mid, &w1) in reachable {
            if let Some(mids) = base.get(&mid) {
                for (&dst, &w2) in mids {
                    if dst != src {
                        *out.entry(dst).or_insert(0.0) += w1 * w2;
                    }
                }
            }
        }
    }
    next
}

/// The full `hops`-hop NWeight computation.
///
/// # Panics
///
/// Panics if `hops` is zero.
pub fn nweight(edges: &[Edge], hops: u32) -> Neighbourhoods {
    assert!(hops > 0, "need at least one hop");
    let base = one_hop(edges);
    let mut current = base.clone();
    for _ in 1..hops {
        current = nweight_hop(&current, &base);
    }
    current
}

/// Shuffle volume per task per hop: the graph expands each hop, making
/// NWeight the most shuffle-bound of the four Spark cases.
pub const HOP_SHUFFLE_BYTES: u64 = 48 * 1024 * 1024;
/// Hops in the benchmark configuration.
pub const HOPS: u32 = 3;
/// Cached adjacency partition per task: 640 MB, so `N/m = 8` (5 GB per
/// executor) overflows the 4 GB executor memory while `N/m <= 4` fits.
pub const PARTITION_BYTES: u64 = 640 * 1024 * 1024;

/// The calibrated NWeight job: one shuffle-heavy stage per hop.
pub fn job(problem_size: u32, parallelism: u32) -> SparkJobSpec {
    let mut spec = SparkJobSpec::emr("nweight", problem_size, parallelism);
    for hop in 0..HOPS {
        // Later hops carry larger neighbourhoods: shuffle grows.
        let growth = 1 + hop as u64;
        spec = spec.stage(
            StageSpec::new(&format!("hop-{}", hop + 1), problem_size)
                .with_task_compute(1.4)
                .with_input_bytes(PARTITION_BYTES)
                .with_cached_input(true)
                .with_shuffle_output(HOP_SHUFFLE_BYTES * growth),
        );
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::random_graph;
    use ipso_sim::SimRng;

    fn edge(src: u32, dst: u32, weight: f64) -> Edge {
        Edge { src, dst, weight }
    }

    #[test]
    fn one_hop_sums_parallel_edges() {
        let hoods = one_hop(&[edge(0, 1, 0.5), edge(0, 1, 0.25), edge(1, 2, 1.0)]);
        assert_eq!(hoods[&0][&1], 0.75);
        assert_eq!(hoods[&1][&2], 1.0);
    }

    #[test]
    fn two_hop_multiplies_along_paths() {
        // 0 →(0.5) 1 →(0.4) 2, and 0 →(0.2) 3 →(0.1) 2.
        let edges = [
            edge(0, 1, 0.5),
            edge(1, 2, 0.4),
            edge(0, 3, 0.2),
            edge(3, 2, 0.1),
        ];
        let two = nweight(&edges, 2);
        // Paths sum: 0.5·0.4 + 0.2·0.1 = 0.22.
        assert!((two[&0][&2] - 0.22).abs() < 1e-12);
    }

    #[test]
    fn cycles_back_to_source_are_dropped() {
        let edges = [edge(0, 1, 0.5), edge(1, 0, 0.5)];
        let two = nweight(&edges, 2);
        assert!(!two[&0].contains_key(&0), "self-path must be dropped");
        assert!(!two[&1].contains_key(&1));
    }

    #[test]
    fn neighbourhoods_grow_with_hops_on_random_graphs() {
        let mut rng = SimRng::seed_from(80);
        let edges = random_graph(60, 3, &mut rng);
        let size = |h: &Neighbourhoods| -> usize { h.values().map(|m| m.len()).sum() };
        let h1 = nweight(&edges, 1);
        let h2 = nweight(&edges, 2);
        let h3 = nweight(&edges, 3);
        assert!(size(&h2) > size(&h1));
        assert!(size(&h3) >= size(&h2));
    }

    #[test]
    fn job_is_shuffle_heavy_per_hop() {
        let j = job(32, 8);
        assert!(j.validate().is_ok());
        assert_eq!(j.stages.len(), HOPS as usize);
        assert!(j.stages[2].shuffle_output_per_task > j.stages[0].shuffle_output_per_task);
    }

    #[test]
    fn fixed_time_speedup_saturates_from_shuffle() {
        use ipso_spark::sweep_fixed_time;
        let pts = sweep_fixed_time(job, 2, &[4, 16, 64]);
        // Shuffle-bound: efficiency (S/m) degrades with m.
        let e0 = pts[0].speedup / 4.0;
        let e2 = pts[2].speedup / 64.0;
        assert!(e2 < e0, "efficiency should fall: {e0} -> {e2}");
    }
}
