//! Ablation: fault injection and recovery overhead versus scale.
//!
//! IPSO charges everything the sequential reference does not pay into
//! the scale-out-induced workload `Wo(n) = (Wp(n)/n)·q(n)` — and fault
//! tolerance is a pure `Wo` citizen: retried attempts, outputs lost to
//! node crashes and losing speculative copies all burn work that a
//! one-machine run never burns. This ablation sweeps the per-attempt
//! failure probability against the scale-out degree on the Sort
//! workload, decomposes the measured overhead into
//! {stragglers, scheduler, retries, speculation}, and fits the IPSO
//! induced factor per failure rate: more faults show up as a measurably
//! inflated `q(n)` (larger fitted `β·n^γ`), exactly how the model says
//! an unreliable cluster should look.
//!
//! Every run is simulated and seeded: the CSV and `BENCH_faults.json`
//! are byte-identical for any `--jobs` value.

use ipso::estimate::estimate_factors;
use ipso::measurement::RunMeasurement;
use ipso_bench::{SweepRunner, Table};
use ipso_cluster::{FaultModel, RecoveryPolicy};
use ipso_mapreduce::{measurement_from_runs, run_sequential, try_run_scale_out};
use ipso_workloads::sort;
use serde::Serialize;

/// Per-attempt failure probabilities swept (node-crash probability is
/// coupled at a tenth of each).
const FAIL_PROBS: [f64; 5] = [0.0, 0.02, 0.05, 0.1, 0.2];
/// Scale-out degrees swept at every failure rate.
const NS: [u32; 8] = [1, 2, 4, 8, 16, 32, 64, 128];
/// Scales reported in the committed regression record.
const REPORT_NS: [u32; 3] = [8, 32, 128];

/// Where the regression record lands: the workspace root, NOT
/// `results/` — it sits next to `BENCH_engines.json` and is validated
/// (schema + sanity) by CI.
const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json");

/// One grid point: a paired sequential/scale-out Sort execution under
/// one `(fail_prob, n)` setting, reduced to the numbers the table and
/// the regression record need.
struct Point {
    measurement: RunMeasurement,
    speedup: f64,
    wasted_frac: f64,
    straggler_s: f64,
    scheduler_s: f64,
    retry_s: f64,
    speculation_s: f64,
}

#[derive(Debug, Serialize)]
struct FaultBenchPoint {
    fail_prob: f64,
    n: u32,
    speedup: f64,
    wasted_frac: f64,
}

#[derive(Debug, Serialize)]
struct FaultFit {
    fail_prob: f64,
    beta: f64,
    gamma: f64,
}

#[derive(Debug, Serialize)]
struct FaultReport {
    schema: &'static str,
    workload: &'static str,
    recovery: &'static str,
    points: Vec<FaultBenchPoint>,
    fits: Vec<FaultFit>,
}

/// The Sort job spec with the ablation's fault setting applied.
///
/// `p = 0` keeps the stock (fault-free) spec: the engines then consume
/// zero fault RNG draws and the row doubles as the pre-fault baseline.
fn spec_for(p: f64, n: u32) -> ipso_mapreduce::JobSpec {
    let mut spec = sort::job_spec(n);
    if p > 0.0 {
        let mut faults = FaultModel::flaky(p);
        faults.node_crash_prob = p / 10.0;
        spec.faults = faults;
        let mut recovery = RecoveryPolicy::hadoop_like().with_speculation();
        recovery.max_attempts = 8;
        spec.recovery = recovery;
    }
    spec
}

fn run_point(p: f64, n: u32) -> Point {
    let spec = spec_for(p, n);
    let splits = sort::make_splits(n, 2);
    let par = try_run_scale_out(&spec, &sort::SortMapper, &sort::SortReducer, &splits)
        .expect("recoverable under the hadoop-like policy");
    let seq = run_sequential(&spec, &sort::SortMapper, &sort::SortReducer, &splits);
    let measurement = measurement_from_runs(&seq.trace, &par.trace);

    let wasted = par
        .trace
        .faults
        .as_ref()
        .map_or(0.0, ipso_cluster::FaultSummary::wasted_total);
    let (retry_s, speculation_s) = par.trace.faults.as_ref().map_or((0.0, 0.0), |s| {
        (s.retry_wasted_s + s.crash_wasted_s, s.speculation_wasted_s)
    });
    Point {
        measurement,
        speedup: measurement.speedup(),
        // Fraction of the map-phase work burnt by recovery.
        wasted_frac: wasted / (seq.trace.phases.map + wasted),
        // Critical-path stretch of the map phase over the ideal even
        // split: straggler noise plus recovery latency on the slowest
        // executor.
        straggler_s: (par.trace.phases.map - seq.trace.phases.map / f64::from(n)).max(0.0),
        // Scheduler-attributed overhead: job setup beyond the
        // sequential environment plus dispatch-induced barrier stretch
        // (everything in Wo that is not wasted recovery work).
        scheduler_s: (par.trace.scale_out_overhead - wasted).max(0.0),
        retry_s,
        speculation_s,
    }
}

fn main() {
    let runner = SweepRunner::from_env();

    // One grid point per (fail_prob, n), failure-rate-major so each
    // runner chunk of NS.len() points is one failure rate's sweep.
    let grid: Vec<(usize, u32)> = (0..FAIL_PROBS.len())
        .flat_map(|p| NS.iter().map(move |&n| (p, n)))
        .collect();
    let points = runner.map(grid, |_ctx, (pi, n)| run_point(FAIL_PROBS[pi], n));

    let mut table = Table::new(
        "ablation_faults",
        &[
            "fail_prob",
            "n",
            "speedup",
            "wasted_frac",
            "straggler_s",
            "scheduler_s",
            "retry_s",
            "speculation_s",
            "beta",
            "gamma",
        ],
    );

    let mut report = FaultReport {
        schema: "ipso-bench-faults/v1",
        workload: "sort",
        recovery: "hadoop_like + speculation, max_attempts = 8",
        points: Vec::new(),
        fits: Vec::new(),
    };
    let mut fitted_q_at_max: Vec<f64> = Vec::new();

    println!("fitted induced factor q(n) = beta * n^gamma per failure rate:\n");
    for (pi, chunk) in points.chunks(NS.len()).enumerate() {
        let p = FAIL_PROBS[pi];
        let measurements: Vec<RunMeasurement> = chunk.iter().map(|pt| pt.measurement).collect();
        let est = estimate_factors(&measurements).expect("estimable sweep");
        let asym = est.to_asymptotic().expect("non-degenerate leading terms");
        fitted_q_at_max.push(est.induced.factor.eval(f64::from(NS[NS.len() - 1])));

        for (pt, &n) in chunk.iter().zip(&NS) {
            table.push(vec![
                p,
                f64::from(n),
                pt.speedup,
                pt.wasted_frac,
                pt.straggler_s,
                pt.scheduler_s,
                pt.retry_s,
                pt.speculation_s,
                asym.beta,
                asym.gamma,
            ]);
            if REPORT_NS.contains(&n) {
                report.points.push(FaultBenchPoint {
                    fail_prob: p,
                    n,
                    speedup: pt.speedup,
                    wasted_frac: pt.wasted_frac,
                });
            }
        }
        report.fits.push(FaultFit {
            fail_prob: p,
            beta: asym.beta,
            gamma: asym.gamma,
        });
        let last = chunk.last().expect("non-empty sweep");
        println!(
            "  p = {p:4.2}: beta = {:9.3e}, gamma = {:5.3}, fitted q(128) = {:8.1}; \
             at n = 128: S = {:5.2}, wasted = {:4.1}% \
             (retry {:6.2} s, speculation {:5.2} s, scheduler {:5.2} s)",
            asym.beta,
            asym.gamma,
            fitted_q_at_max[pi],
            last.speedup,
            last.wasted_frac * 100.0,
            last.retry_s,
            last.speculation_s,
            last.scheduler_s,
        );
    }
    println!();
    table.emit();

    let json = serde_json::to_string_pretty(&report).expect("fault report serializes");
    std::fs::write(REPORT_PATH, json + "\n").expect("write BENCH_faults.json");
    println!("wrote {REPORT_PATH}");

    println!(
        "\nfault recovery is scale-out-induced workload: the sequential reference never\n\
         re-executes, so every retried attempt, crash-lost output and losing speculative\n\
         copy lands in Wo(n) and inflates the fitted q(n) — the reliability tax grows\n\
         with the cluster, not with the problem."
    );

    // Sanity, on the deterministic seeded sweep. Rows are
    // failure-rate-major; the last row of each chunk is n = 128.
    let speedup_col = table.column("speedup");
    let wasted_col = table.column("wasted_frac");
    let at_max = |pi: usize| &table.rows[(pi + 1) * NS.len() - 1];
    assert!(
        at_max(FAIL_PROBS.len() - 1)[speedup_col] < at_max(0)[speedup_col],
        "faults at p = 0.2 must cost speedup at n = 128"
    );
    for pi in 1..FAIL_PROBS.len() {
        assert!(
            at_max(pi)[wasted_col] > at_max(pi - 1)[wasted_col],
            "wasted-work fraction must grow with the failure rate at n = 128"
        );
    }
    assert!(
        fitted_q_at_max[FAIL_PROBS.len() - 1] > fitted_q_at_max[0],
        "the fitted induced factor q(128) must be inflated by faults: {} vs {}",
        fitted_q_at_max[FAIL_PROBS.len() - 1],
        fitted_q_at_max[0]
    );
}
