//! Scaling prediction (paper Section V).
//!
//! The paper's central practical claim: *"as long as the three scaling
//! factors … can be accurately estimated at small problem sizes, the
//! speedups at large problem sizes may be predicted with high accuracy."*
//!
//! Two pipelines are implemented:
//!
//! * [`ScalingPredictor`] — the MapReduce pipeline (Figs. 6–7): estimate
//!   `EX`, `IN`, `q` from run decompositions with `n ≤ window`, build the
//!   deterministic model, extrapolate.
//! * [`FixedSizePredictor`] — the Collaborative Filtering pipeline
//!   (Table I / Fig. 8): fit `E[max Tp,i(n)] = a/n + c` and
//!   `Wo(n) = b·n^γ` by nonlinear regression, extrapolate `E[Tp,1(1)]`
//!   to `n = 1`, and evaluate Eq. 18.

use crate::estimate::{estimate_factors, FactorEstimates};
use crate::measurement::RunMeasurement;
use crate::model::IpsoModel;
use crate::stochastic::fixed_size_speedup;
use crate::ModelError;
use ipso_fit::{fit_power_law, levenberg_marquardt, NonlinearOptions};

/// Predicts large-`n` speedups from small-`n` run decompositions.
///
/// # Example
///
/// ```no_run
/// use ipso::predict::ScalingPredictor;
/// # fn runs() -> Vec<ipso::RunMeasurement> { Vec::new() }
///
/// # fn main() -> Result<(), ipso::ModelError> {
/// let measurements = runs(); // RunMeasurements with n up to 160
/// let predictor = ScalingPredictor::fit(&measurements, 16)?;
/// let s_160 = predictor.predict(160.0)?;
/// println!("predicted S(160) = {s_160:.1}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ScalingPredictor {
    estimates: FactorEstimates,
    model: IpsoModel,
    window: u32,
}

impl ScalingPredictor {
    /// Fits the predictor using only measurements with `n ≤ window`
    /// (the paper uses `n ≤ 16` for WordCount, Sort and QMC, and
    /// `16 ≤ n ≤ 64` for TeraSort to skip the pre-spill regime).
    ///
    /// # Errors
    ///
    /// Propagates estimation and model-construction errors; returns
    /// [`ModelError::InsufficientData`] when the window holds fewer than
    /// three runs.
    pub fn fit(runs: &[RunMeasurement], window: u32) -> Result<Self, ModelError> {
        let windowed: Vec<RunMeasurement> =
            runs.iter().copied().filter(|r| r.n <= window).collect();
        let estimates = estimate_factors(&windowed)?;
        let model = estimates.to_model()?;
        Ok(ScalingPredictor {
            estimates,
            model,
            window,
        })
    }

    /// Fits the scaling factors using only runs in the `[lo, hi]` window
    /// of scale-out degrees, while the smallest run overall still provides
    /// the `n = 1` workload reference — the paper's TeraSort methodology
    /// (fit on `16 ≤ n ≤ 64` to skip the pre-spill regime).
    ///
    /// # Errors
    ///
    /// Same as [`ScalingPredictor::fit`].
    pub fn fit_range(runs: &[RunMeasurement], lo: u32, hi: u32) -> Result<Self, ModelError> {
        let estimates = crate::estimate::estimate_factors_windowed(runs, lo, hi)?;
        let model = estimates.to_model()?;
        Ok(ScalingPredictor {
            estimates,
            model,
            window: hi,
        })
    }

    /// The factor estimates behind the prediction.
    pub fn estimates(&self) -> &FactorEstimates {
        &self.estimates
    }

    /// The fitted deterministic model.
    pub fn model(&self) -> &IpsoModel {
        &self.model
    }

    /// The fitting window used.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Predicts the speedup at scale-out degree `n`.
    ///
    /// # Errors
    ///
    /// Propagates model-evaluation errors.
    pub fn predict(&self, n: f64) -> Result<f64, ModelError> {
        self.model.speedup(n)
    }

    /// Predicts a whole curve.
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation error.
    pub fn predict_curve(
        &self,
        ns: impl IntoIterator<Item = u32>,
    ) -> Result<Vec<(u32, f64)>, ModelError> {
        self.model.speedup_curve(ns)
    }

    /// Compares predictions against measured speedups, returning
    /// `(n, predicted, measured)` triples.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn validate_against(
        &self,
        runs: &[RunMeasurement],
    ) -> Result<Vec<(u32, f64, f64)>, ModelError> {
        runs.iter()
            .map(|r| Ok((r.n, self.predict(r.n as f64)?, r.speedup())))
            .collect()
    }
}

/// One measurement row of the fixed-size (Collaborative Filtering)
/// pipeline — paper Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedSizeSample {
    /// Scale-out degree.
    pub n: u32,
    /// Measured `E[max_i Tp,i(n)]` (s).
    pub max_task_time: f64,
    /// Measured scale-out-induced workload `Wo(n)` (s).
    pub overhead: f64,
}

/// The fitted fixed-size predictor (paper Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedSizePredictor {
    /// Coefficient `a` of `E[max Tp,i(n)] = a/n + c`.
    pub task_coeff: f64,
    /// Offset `c` of the task-time curve.
    pub task_offset: f64,
    /// Coefficient `b` of the measured overhead `Wo(n) = b·n^(γ−1)`.
    pub overhead_coeff: f64,
    /// Exponent `γ` of the *induced factor* `q(n) = Wo(n)·n/Wp(1) ≈ β·n^γ`
    /// (paper Eqs. 6 and 15). A linearly growing broadcast overhead
    /// `Wo(n) ∝ n` therefore yields `γ = 2`, as the paper finds for
    /// Collaborative Filtering.
    pub gamma: f64,
    /// Extrapolated single-unit task time `E[Tp,1(1)] = a + c`.
    pub tp1: f64,
}

impl FixedSizePredictor {
    /// Fits the two workload curves by nonlinear regression.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InsufficientData`] with fewer than three
    /// samples, or regression errors.
    pub fn fit(samples: &[FixedSizeSample]) -> Result<Self, ModelError> {
        if samples.len() < 3 {
            return Err(ModelError::InsufficientData {
                points: samples.len(),
                required: 3,
            });
        }
        let ns: Vec<f64> = samples.iter().map(|s| s.n as f64).collect();
        let tmax: Vec<f64> = samples.iter().map(|s| s.max_task_time).collect();
        let wo: Vec<f64> = samples.iter().map(|s| s.overhead).collect();

        // E[max Tp,i(n)] = a/n + c. Seed a from the first point.
        let seed_a = tmax[0] * ns[0];
        let task_fit = levenberg_marquardt(
            |p, n| p[0] / n + p[1],
            &ns,
            &tmax,
            &[seed_a, 0.0],
            &NonlinearOptions::default(),
        )?;

        // Measured overhead Wo(n) = b·n^w; the induced factor gains one
        // power of n: q(n) = Wo(n)·n/Wp(1) ≈ β·n^(w+1), so γ = w + 1.
        let overhead_fit = fit_power_law(&ns, &wo)?;

        let (a, c) = (task_fit.params[0], task_fit.params[1]);
        Ok(FixedSizePredictor {
            task_coeff: a,
            task_offset: c,
            overhead_coeff: overhead_fit.coefficient,
            gamma: overhead_fit.exponent + 1.0,
            tp1: a + c,
        })
    }

    /// Predicted `E[max Tp,i(n)]`.
    pub fn max_task_time(&self, n: f64) -> f64 {
        self.task_coeff / n + self.task_offset
    }

    /// Predicted `Wo(n) = b·n^(γ−1)`.
    pub fn overhead(&self, n: f64) -> f64 {
        self.overhead_coeff * n.powf(self.gamma - 1.0)
    }

    /// Predicted speedup via Eq. 18.
    ///
    /// # Errors
    ///
    /// Propagates [`fixed_size_speedup`] errors.
    pub fn speedup(&self, n: f64) -> Result<f64, ModelError> {
        fixed_size_speedup(self.tp1, self.max_task_time(n), self.overhead(n))
    }

    /// The scale-out degree maximizing the predicted speedup in
    /// `[1, n_max]`, with its value. The paper finds the CF peak near
    /// `n = 60` at `S ≈ 21`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn peak(&self, n_max: u32) -> Result<(u32, f64), ModelError> {
        let mut best = (1u32, self.speedup(1.0)?);
        for n in 2..=n_max {
            let s = self.speedup(n as f64)?;
            if s > best.1 {
                best = (n, s);
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table I.
    fn table1() -> Vec<FixedSizeSample> {
        vec![
            FixedSizeSample {
                n: 10,
                max_task_time: 209.0,
                overhead: 5.5,
            },
            FixedSizeSample {
                n: 30,
                max_task_time: 79.3,
                overhead: 17.7,
            },
            FixedSizeSample {
                n: 60,
                max_task_time: 43.7,
                overhead: 36.0,
            },
            FixedSizeSample {
                n: 90,
                max_task_time: 31.1,
                overhead: 54.3,
            },
        ]
    }

    #[test]
    fn collaborative_filtering_gamma_is_two() {
        let p = FixedSizePredictor::fit(&table1()).unwrap();
        // Wo grows slightly sub-quadratically in the raw data; the paper
        // rounds to γ = 2.
        assert!((p.gamma - 2.0).abs() < 0.25, "gamma = {}", p.gamma);
    }

    #[test]
    fn collaborative_filtering_tp1_near_paper_value() {
        let p = FixedSizePredictor::fit(&table1()).unwrap();
        // The paper extrapolates E[Tp,1(1)] = 1602.5.
        assert!(
            (p.tp1 - 1602.5).abs() / 1602.5 < 0.35,
            "tp1 = {} (paper: 1602.5)",
            p.tp1
        );
    }

    #[test]
    fn collaborative_filtering_peaks_mid_range() {
        let p = FixedSizePredictor::fit(&table1()).unwrap();
        let (n_peak, s_peak) = p.peak(200).unwrap();
        // Paper: dismal speedup of 21 at its peak near n = 60, then decay.
        assert!((30..=90).contains(&n_peak), "peak at n = {n_peak}");
        assert!((10.0..=35.0).contains(&s_peak), "peak speedup = {s_peak}");
        assert!(p.speedup(200.0).unwrap() < s_peak);
    }

    #[test]
    fn fixed_size_fit_requires_three_samples() {
        let err = FixedSizePredictor::fit(&table1()[..2]).unwrap_err();
        assert!(matches!(err, ModelError::InsufficientData { .. }));
    }

    fn synth_runs(n_values: &[u32]) -> Vec<RunMeasurement> {
        // Sort-like: EX = n, IN = 0.36n + 0.64, no overhead.
        n_values
            .iter()
            .map(|&n| {
                let nf = n as f64;
                RunMeasurement {
                    n,
                    seq_parallel_work: 50.0 * nf,
                    seq_serial_work: 10.0 * (0.36 * nf + 0.64),
                    par_map_time: 50.0,
                    par_serial_time: 10.0 * (0.36 * nf + 0.64),
                    par_overhead: 0.0,
                }
            })
            .collect()
    }

    #[test]
    fn small_window_predicts_large_n() {
        let all = synth_runs(&[1, 2, 4, 8, 12, 16, 32, 64, 128, 160]);
        let predictor = ScalingPredictor::fit(&all, 16).unwrap();
        for r in all.iter().filter(|r| r.n > 16) {
            let predicted = predictor.predict(r.n as f64).unwrap();
            let measured = r.speedup();
            let rel = (predicted - measured).abs() / measured;
            assert!(
                rel < 0.02,
                "n = {}: predicted {predicted}, measured {measured}",
                r.n
            );
        }
    }

    #[test]
    fn window_excludes_large_runs() {
        let all = synth_runs(&[1, 2, 4, 8, 16, 64]);
        let p = ScalingPredictor::fit(&all, 16).unwrap();
        assert_eq!(p.window(), 16);
        assert_eq!(p.estimates().external_samples.len(), 5);
    }

    #[test]
    fn fit_range_selects_interval() {
        let all = synth_runs(&[1, 2, 4, 8, 16, 24, 32, 48, 64]);
        let p = ScalingPredictor::fit_range(&all, 16, 64).unwrap();
        assert_eq!(p.estimates().external_samples.len(), 5);
    }

    #[test]
    fn validate_against_reports_triples() {
        let all = synth_runs(&[1, 2, 4, 8, 16, 64]);
        let p = ScalingPredictor::fit(&all, 16).unwrap();
        let rows = p.validate_against(&all).unwrap();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[5].0, 64);
    }
}
