//! Two-segment (piecewise linear) regression with changepoint search.
//!
//! TeraSort's internal scaling factor in the paper (Fig. 5) is step-wise:
//! one linear regime while the reducer's working set fits in memory
//! (slope ≈ 0.15) and a steeper regime once disk I/O kicks in
//! (slope ≈ 0.25, onset near `n ≈ 15`). This module finds such a
//! changepoint by exhaustive search over candidate breakpoints, fitting an
//! independent line to each side and minimising the total sum of squared
//! residuals.

use crate::diagnostics::GoodnessOfFit;
use crate::error::validate_xy;
use crate::linear::{fit_line, LineFit};
use crate::FitError;

/// Result of a two-segment linear fit.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoSegmentFit {
    /// The `x` value at which the regimes switch. Points with
    /// `x <= breakpoint` belong to the left segment.
    pub breakpoint: f64,
    /// Fit of the left (small-`x`) segment.
    pub left: LineFit,
    /// Fit of the right (large-`x`) segment.
    pub right: LineFit,
    /// Combined goodness of fit over all points.
    pub gof: GoodnessOfFit,
}

impl TwoSegmentFit {
    /// Evaluates the piecewise model at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        if x <= self.breakpoint {
            self.left.predict(x)
        } else {
            self.right.predict(x)
        }
    }

    /// Returns `true` when the right segment grows strictly faster than the
    /// left one — the "burst" signature the paper observes for TeraSort.
    pub fn slope_increases(&self) -> bool {
        self.right.slope > self.left.slope
    }
}

/// Fits two independent line segments, searching every admissible
/// changepoint. Each segment must contain at least `min_segment` points
/// (and at least 2).
///
/// # Errors
///
/// Returns validation errors for bad input, or [`FitError::TooFewPoints`]
/// when fewer than `2 * max(min_segment, 2)` points are supplied. Candidate
/// splits whose side-fits are singular are skipped; if every candidate is
/// singular the error from the last candidate is returned.
pub fn fit_two_segment(
    x: &[f64],
    y: &[f64],
    min_segment: usize,
) -> Result<TwoSegmentFit, FitError> {
    let min_segment = min_segment.max(2);
    validate_xy(x, y, 2 * min_segment)?;

    // Sort points by x so the split index is meaningful.
    let mut order: Vec<usize> = (0..x.len()).collect();
    order.sort_by(|&a, &b| x[a].total_cmp(&x[b]));
    let xs: Vec<f64> = order.iter().map(|&i| x[i]).collect();
    let ys: Vec<f64> = order.iter().map(|&i| y[i]).collect();

    let mut best: Option<TwoSegmentFit> = None;
    let mut last_err = FitError::Singular;

    for split in min_segment..=(xs.len() - min_segment) {
        let (lx, rx) = xs.split_at(split);
        let (ly, ry) = ys.split_at(split);
        let left = match fit_line(lx, ly) {
            Ok(f) => f,
            Err(e) => {
                last_err = e;
                continue;
            }
        };
        let right = match fit_line(rx, ry) {
            Ok(f) => f,
            Err(e) => {
                last_err = e;
                continue;
            }
        };
        let ss = left.gof.ss_res + right.gof.ss_res;
        let is_better = best.as_ref().is_none_or(|b| ss < b.gof.ss_res);
        if is_better {
            let predicted: Vec<f64> = xs
                .iter()
                .map(|&xv| {
                    if xv <= lx[lx.len() - 1] {
                        left.predict(xv)
                    } else {
                        right.predict(xv)
                    }
                })
                .collect();
            let mut gof = GoodnessOfFit::from_predictions(&ys, &predicted, 5);
            // Use the side-fit residual total as the selection criterion so
            // ties at the boundary do not flip the choice.
            gof.ss_res = ss;
            best = Some(TwoSegmentFit {
                breakpoint: lx[lx.len() - 1],
                left,
                right,
                gof,
            });
        }
    }

    best.ok_or(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stepwise(n: f64) -> f64 {
        // The paper's TeraSort IN(n): slope 0.15 before n = 15, 0.25 after.
        if n <= 15.0 {
            1.0 + 0.15 * (n - 1.0)
        } else {
            1.0 + 0.15 * 14.0 + 0.25 * (n - 15.0) + 1.0 // +1.0: 30% burst at the switch
        }
    }

    #[test]
    fn finds_terasort_style_changepoint() {
        let x: Vec<f64> = (1..=40).map(|v| v as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| stepwise(v)).collect();
        let fit = fit_two_segment(&x, &y, 3).unwrap();
        assert!(
            (14.0..=16.0).contains(&fit.breakpoint),
            "breakpoint = {}",
            fit.breakpoint
        );
        assert!(
            (fit.left.slope - 0.15).abs() < 0.01,
            "left slope = {}",
            fit.left.slope
        );
        assert!(
            (fit.right.slope - 0.25).abs() < 0.01,
            "right slope = {}",
            fit.right.slope
        );
        assert!(fit.slope_increases());
    }

    #[test]
    fn single_regime_still_fits_well() {
        let x: Vec<f64> = (1..=20).map(|v| v as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        let fit = fit_two_segment(&x, &y, 2).unwrap();
        assert!((fit.left.slope - 2.0).abs() < 1e-9);
        assert!((fit.right.slope - 2.0).abs() < 1e-9);
        assert!(fit.gof.ss_res < 1e-18);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let x = [5.0, 1.0, 3.0, 2.0, 4.0, 8.0, 7.0, 6.0];
        let y: Vec<f64> = x
            .iter()
            .map(|&v| if v <= 4.0 { v } else { 3.0 * v - 8.0 })
            .collect();
        let fit = fit_two_segment(&x, &y, 2).unwrap();
        assert!((fit.left.slope - 1.0).abs() < 1e-9);
        assert!((fit.right.slope - 3.0).abs() < 1e-9);
        // x = 4 lies on both lines, so either split is a perfect fit.
        assert!(
            (3.0..=4.0).contains(&fit.breakpoint),
            "breakpoint = {}",
            fit.breakpoint
        );
        assert!(fit.gof.ss_res < 1e-18);
    }

    #[test]
    fn too_few_points_rejected() {
        let err = fit_two_segment(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0], 2).unwrap_err();
        assert!(matches!(err, FitError::TooFewPoints { .. }));
    }

    #[test]
    fn predict_uses_correct_segment() {
        let x: Vec<f64> = (1..=10).map(|v| v as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| if v <= 5.0 { v } else { 10.0 * v })
            .collect();
        let fit = fit_two_segment(&x, &y, 2).unwrap();
        assert!((fit.predict(2.0) - 2.0).abs() < 1e-6);
        assert!((fit.predict(9.0) - 90.0).abs() < 1e-6);
    }
}
