//! The classic scaling laws (paper Eq. 12) as IPSO special cases.
//!
//! With `IN(n) = 1` and `q(n) = 0`, IPSO reduces to:
//!
//! * **Amdahl's law** (`EX(n) = 1`, fixed-size):
//!   `S(n) = 1 / (η/n + (1 − η))`;
//! * **Gustafson's law** (`EX(n) = n`, fixed-time):
//!   `S(n) = η·n + (1 − η)`;
//! * **Sun-Ni's law** (`EX(n) = g(n)`, memory-bounded):
//!   `S(n) = (η·g(n) + (1 − η)) / (η·g(n)/n + (1 − η))`.
//!
//! For the data-intensive workloads studied in the paper `g(n) ≈ n` with
//! high precision (the working set is block-size bounded per node), so
//! Sun-Ni coincides with Gustafson — see [`sun_ni_linear_memory`].

use crate::error::{check_eta, check_scale_out};
use crate::factors::ScalingFactor;
use crate::model::IpsoModel;
use crate::ModelError;

/// Amdahl's law: `S(n) = 1 / (η/n + (1 − η))`.
///
/// # Errors
///
/// Returns an error for `η ∉ (0, 1]` or invalid `n`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), ipso::ModelError> {
/// let s = ipso::classic::amdahl(0.95, 20.0)?;
/// assert!((s - 1.0 / (0.95 / 20.0 + 0.05)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn amdahl(eta: f64, n: f64) -> Result<f64, ModelError> {
    check_eta(eta)?;
    check_scale_out(n)?;
    Ok(1.0 / (eta / n + (1.0 - eta)))
}

/// Gustafson's law: `S(n) = η·n + (1 − η)`.
///
/// # Errors
///
/// Returns an error for `η ∉ (0, 1]` or invalid `n`.
pub fn gustafson(eta: f64, n: f64) -> Result<f64, ModelError> {
    check_eta(eta)?;
    check_scale_out(n)?;
    Ok(eta * n + (1.0 - eta))
}

/// Sun-Ni's law with a caller-supplied memory-bounded scaling function
/// `g(n)`: `S(n) = (η·g(n) + 1 − η) / (η·g(n)/n + 1 − η)`.
///
/// # Errors
///
/// Returns an error for `η ∉ (0, 1]`, invalid `n`, or non-finite /
/// non-positive `g(n)`.
pub fn sun_ni<G>(eta: f64, n: f64, g: G) -> Result<f64, ModelError>
where
    G: Fn(f64) -> f64,
{
    check_eta(eta)?;
    check_scale_out(n)?;
    let gn = g(n);
    if !gn.is_finite() || gn <= 0.0 {
        return Err(ModelError::NonFinite("memory-bounded scaling g(n)"));
    }
    Ok((eta * gn + (1.0 - eta)) / (eta * gn / n + (1.0 - eta)))
}

/// Sun-Ni's law under the paper's observation that `g(n) ≈ n` for
/// block-size-bounded data-intensive workloads, which makes it coincide
/// with Gustafson's law.
///
/// # Errors
///
/// Returns an error for `η ∉ (0, 1]` or invalid `n`.
pub fn sun_ni_linear_memory(eta: f64, n: f64) -> Result<f64, ModelError> {
    sun_ni(eta, n, |v| v)
}

/// Amdahl's bound `1/(1 − η)`, the `n → ∞` limit of [`amdahl`].
///
/// # Errors
///
/// Returns an error for `η ∉ (0, 1)`; `η = 1` has no finite bound and is
/// rejected as [`ModelError::InvalidEta`].
pub fn amdahl_bound(eta: f64) -> Result<f64, ModelError> {
    check_eta(eta)?;
    if eta >= 1.0 {
        return Err(ModelError::InvalidEta(eta));
    }
    Ok(1.0 / (1.0 - eta))
}

/// Builds the [`IpsoModel`] corresponding to Amdahl's law.
///
/// # Errors
///
/// Returns an error for `η ∉ (0, 1]`.
pub fn amdahl_model(eta: f64) -> Result<IpsoModel, ModelError> {
    IpsoModel::builder(eta).build()
}

/// Builds the [`IpsoModel`] corresponding to Gustafson's law.
///
/// # Errors
///
/// Returns an error for `η ∉ (0, 1]`.
pub fn gustafson_model(eta: f64) -> Result<IpsoModel, ModelError> {
    IpsoModel::builder(eta)
        .external(ScalingFactor::linear())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_known_values() {
        // η = 0.5: S(∞) = 2.
        assert!((amdahl(0.5, 1.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((amdahl(0.5, 2.0).unwrap() - 4.0 / 3.0).abs() < 1e-12);
        assert!(amdahl(0.5, 1e9).unwrap() < 2.0);
        assert!((amdahl_bound(0.5).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gustafson_is_linear_in_n() {
        let s1 = gustafson(0.9, 10.0).unwrap();
        let s2 = gustafson(0.9, 20.0).unwrap();
        assert!((s2 - s1 - 0.9 * 10.0).abs() < 1e-12);
    }

    #[test]
    fn sun_ni_reduces_to_amdahl_with_constant_memory() {
        for n in [2.0, 8.0, 64.0] {
            let a = amdahl(0.8, n).unwrap();
            let s = sun_ni(0.8, n, |_| 1.0).unwrap();
            assert!((a - s).abs() < 1e-12);
        }
    }

    #[test]
    fn sun_ni_reduces_to_gustafson_with_linear_memory() {
        for n in [2.0, 8.0, 64.0] {
            let g = gustafson(0.8, n).unwrap();
            let s = sun_ni_linear_memory(0.8, n).unwrap();
            assert!((g - s).abs() < 1e-12);
        }
    }

    #[test]
    fn superlinear_memory_beats_gustafson() {
        let g = gustafson(0.8, 16.0).unwrap();
        let s = sun_ni(0.8, 16.0, |n| n * n.log2().max(1.0)).unwrap();
        assert!(s > g);
    }

    #[test]
    fn models_match_closed_forms() {
        let am = amdahl_model(0.7).unwrap();
        let gm = gustafson_model(0.7).unwrap();
        for n in [1.0, 3.0, 50.0] {
            assert!((am.speedup(n).unwrap() - amdahl(0.7, n).unwrap()).abs() < 1e-12);
            assert!((gm.speedup(n).unwrap() - gustafson(0.7, n).unwrap()).abs() < 1e-12);
        }
    }

    #[test]
    fn bound_rejects_eta_one() {
        assert!(amdahl_bound(1.0).is_err());
    }

    #[test]
    fn sun_ni_rejects_degenerate_g() {
        assert!(sun_ni(0.5, 4.0, |_| 0.0).is_err());
        assert!(sun_ni(0.5, 4.0, |_| f64::NAN).is_err());
    }
}
