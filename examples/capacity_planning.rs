//! Measurement-based capacity planning: profile a job at a few small
//! cluster sizes, fit IPSO, and choose how many nodes to buy.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use ipso::predict::ScalingPredictor;
use ipso::provision::{CostModel, Provisioner};
use ipso_workloads::terasort;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Profile runs: the expensive part you'd do once, at small scale.
    println!("profiling terasort at n = 1..16 on the simulated cluster…");
    let sweep = terasort::sweep(&[1, 2, 4, 6, 8, 10, 12, 16]);
    let measurements = sweep.measurements();

    // Fit IPSO on the profile.
    let predictor = ScalingPredictor::fit(&measurements, 16)?;
    let est = predictor.estimates();
    println!(
        "fitted: eta = {:.3}, IN shape = {:?}, q shape = {:?}\n",
        est.eta, est.internal.shape, est.induced.shape
    );

    // Ask provisioning questions against 2019 EC2 pricing.
    let t1 = measurements[0].sequential_time();
    let provisioner = Provisioner::new(predictor.model().clone(), t1, CostModel::default())?;

    println!(
        "{:>5} {:>9} {:>11} {:>10} {:>12}",
        "n", "speedup", "job time s", "cost $", "S per $"
    );
    for n in [1u32, 5, 10, 20, 40, 80, 120, 160, 200] {
        let p = provisioner.evaluate(n)?;
        println!(
            "{:>5} {:>9.2} {:>11.1} {:>10.4} {:>12.1}",
            p.n, p.speedup, p.job_time, p.job_cost, p.speedup_per_dollar
        );
    }

    let fastest = provisioner.fastest(200)?;
    let efficient = provisioner.most_efficient(200)?;
    let knee = provisioner.knee(0.9, 200)?;
    println!("\nrecommendations:");
    println!(
        "  minimize wall-clock : n = {} (S = {:.2})",
        fastest.n, fastest.speedup
    );
    println!(
        "  maximize S per $    : n = {} (S = {:.2}, ${:.4})",
        efficient.n, efficient.speedup, efficient.job_cost
    );
    println!(
        "  90%-of-peak knee    : n = {} (S = {:.2})",
        knee.n, knee.speedup
    );

    let deadline = t1 / 2.5;
    match provisioner.cheapest_meeting_deadline(deadline, 200)? {
        Some(p) => println!(
            "  meet {deadline:.0}s deadline : n = {} (time {:.1}s, ${:.4})",
            p.n, p.job_time, p.job_cost
        ),
        None => println!(
            "  meet {deadline:.0}s deadline : impossible below n = 200 — the speedup is bounded"
        ),
    }
    println!(
        "\nBecause this workload is type IIIt,1 (in-proportion scaling), its speedup is\n\
         bounded: past the knee every extra node is wasted money. Gustafson's law would\n\
         have told you to keep buying."
    );
    Ok(())
}
