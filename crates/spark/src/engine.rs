//! Stage-DAG execution.
//!
//! Since the unified-runtime refactor [`run_job`] is plan → execute →
//! walk:
//!
//! 1. **Plan**: [`crate::lower::lower_chain`] translates the job into
//!    the framework-agnostic task-graph IR — one stage per DAG stage
//!    with uniform ideal tasks, first-wave fixed extras and lineage
//!    metadata;
//! 2. **Execute**: [`ipso_cluster::execute`] owns straggler sampling,
//!    fault resolution, wave scheduling (as a parallel wave over
//!    `spec.engine.threads` host threads, with instrumentation captured
//!    thread-locally) and lineage-recompute accounting;
//! 3. **Walk** (sequential): the virtual clock advances stage by stage —
//!    serialized broadcasts, stage waves, lineage replays, incast
//!    shuffles — merging each stage's captured records in stage order so
//!    the global observability stream is byte-identical to a sequential
//!    run for any thread count.

use ipso_cluster::runtime::RuntimeConfig;
use ipso_cluster::{ClusterError, FaultSummary, SchedulerPolicy};
use ipso_sim::SimRng;

use crate::eventlog::{write_event_log, SparkEvent};
use crate::job::SparkJobSpec;
use crate::lower::lower_chain;

/// Read rate for task input, bytes/s (cached partitions / local HDFS
/// blocks stream at roughly memory-page-cache speed on m4-class nodes).
pub(crate) const INPUT_READ_RATE: f64 = 150.0e6;

/// The result of one Spark-like job execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SparkRun {
    /// Total wall-clock time, seconds.
    pub total_time: f64,
    /// Per-stage wall-clock latencies, in DAG order.
    pub stage_times: Vec<f64>,
    /// Scale-out-induced portion: broadcasts, dispatch serialization,
    /// first-wave deserialization, barrier skew, and — with faults
    /// enabled — wasted recovery work and lineage recomputation, seconds.
    pub overhead_time: f64,
    /// Per-stage fault-recovery summaries, in DAG order. Empty when the
    /// fault model is disabled.
    pub fault_summaries: Vec<FaultSummary>,
    /// The Spark-style JSON event log of the run.
    pub log: String,
}

impl SparkRun {
    /// Fraction of wall-clock time that is scale-out-induced overhead.
    pub fn overhead_fraction(&self) -> f64 {
        if self.total_time > 0.0 {
            self.overhead_time / self.total_time
        } else {
            0.0
        }
    }
}

/// Executes the job's stage DAG on `m` executors.
///
/// Per stage, in order:
///
/// 0. the driver launches the `m` executors serially (overhead linear
///    in `m`);
/// 1. the driver broadcasts `broadcast_bytes` to each executor *serially*
///    (the \[12\] bottleneck) — pure scale-out-induced time;
/// 2. tasks are dispatched centrally and run in waves; tasks of the first
///    wave pay the executor's one-time deserialization cost;
/// 3. tasks whose executor working set (cached partitions × tasks per
///    executor) exceeds executor memory run `spill_slowdown`× slower;
/// 4. the stage's shuffle output is redistributed m-to-m with the incast
///    goodput penalty at each receiver.
///
/// # Panics
///
/// Panics if the spec fails validation or — with faults enabled — the
/// run hits an unrecoverable fault ([`try_run_job`] returns those as
/// typed errors instead).
pub fn run_job(spec: &SparkJobSpec) -> SparkRun {
    try_run_job(spec).unwrap_or_else(|e| panic!("unrecoverable fault: {e}"))
}

/// [`run_job`] with fault-recovery failures surfaced as typed errors.
///
/// With `spec.faults` enabled, each stage's planned durations pass
/// through [`resolve_faults`] (in the sequential plan phase, so the RNG
/// stream stays byte-deterministic for any thread count): recovery
/// latency lengthens the affected tasks, wasted work is charged into
/// `overhead_time`, and a node crash in stage `k > 0` additionally
/// triggers lineage recomputation of the crashed node's stage-`k−1`
/// partitions — Spark's RDD recovery — charged as both clock time and
/// overhead.
///
/// # Errors
///
/// Returns [`ClusterError::RetriesExhausted`] or
/// [`ClusterError::WastedWorkExceeded`] from any stage's resolution.
///
/// # Panics
///
/// Panics if the spec fails validation.
pub fn try_run_job(spec: &SparkJobSpec) -> Result<SparkRun, ClusterError> {
    spec.validate().expect("invalid spark job spec");
    let m = spec.parallelism;
    let mut rng =
        SimRng::seed_from(spec.seed ^ (u64::from(m) << 32) ^ u64::from(spec.problem_size));

    // Plan and execute. The runtime consumes the RNG sequentially in
    // stage order (straggler draws, then fault resolution — disabled
    // consumes zero draws), computes every stage's actual / idealized /
    // no-straggler schedules as a parallel wave over the host threads
    // with instrumentation captured per stage, and attributes lineage
    // recomputation from the graph's dependency metadata.
    let graph = lower_chain(spec);
    let runtime = RuntimeConfig {
        executors: m as usize,
        scheduler: spec.scheduler,
        policy: SchedulerPolicy::Fifo,
        straggler: spec.straggler,
        faults: spec.faults,
        recovery: spec.recovery,
        threads: spec.engine.threads,
    };
    let outcome = ipso_cluster::execute(&graph, &runtime, &mut rng)?;

    // Walk the virtual clock through the stages in order, merging each
    // stage's captured records at its place so the global observability
    // stream is byte-identical to a sequential run.
    let mut clock = 0.0f64;
    let mut overhead = 0.0f64;
    let mut stage_times = Vec::with_capacity(spec.stages.len());
    let mut fault_summaries: Vec<FaultSummary> = Vec::new();
    let mut events = vec![SparkEvent::ApplicationStart {
        app_name: spec.name.clone(),
        timestamp: 0.0,
    }];

    // Executor launch is serialized at the driver: pure scale-out-induced
    // time linear in m (the driver registers one container at a time).
    let launch = outcome.setup_overhead;
    clock += launch;
    overhead += launch;
    if ipso_obs::enabled() {
        ipso_obs::counter_add("spark.jobs", 1);
        ipso_obs::record_span("driver", "executor-launch", "spark", 0.0, launch);
        ipso_obs::gauge_add("overhead.scheduling_s", launch);
    }

    for (((stage_id, stage), node), mut staged) in spec
        .stages
        .iter()
        .enumerate()
        .zip(&graph.stages)
        .zip(outcome.stages)
    {
        let submitted = clock;
        events.push(SparkEvent::StageSubmitted {
            stage_id: stage_id as u32,
            stage_name: stage.name.clone(),
            num_tasks: stage.tasks,
            submission_time: submitted,
        });

        // 1. Driver broadcast (serialized unicasts) — the stage's
        // pre-wave overhead in the IR.
        let broadcast = node.pre_overhead;
        clock += broadcast;
        overhead += broadcast;
        if ipso_obs::enabled() {
            stage.record_metrics();
            if broadcast > 0.0 {
                ipso_obs::record_span(
                    "driver",
                    &format!("broadcast-{}", stage.name),
                    "spark",
                    submitted,
                    submitted + broadcast,
                );
            }
            ipso_obs::gauge_add("overhead.broadcast_s", broadcast);
        }

        // 2./3. The runtime's schedules; their captured records land in
        // the global stream here, in stage order.
        ipso_obs::merge(std::mem::take(&mut staged.records));
        let stage_overhead = staged.schedule_overhead();
        overhead += stage_overhead;
        if staged.no_straggler.is_some() {
            let tail = staged.straggler_tail();
            ipso_obs::gauge_add("overhead.straggler_tail_s", tail);
            ipso_obs::gauge_add("overhead.scheduling_s", stage_overhead - tail);
            staged.record_task_spans(node, "spark", clock);
        }
        staged.record_fault_instants("spark", clock);
        clock += staged.schedule.makespan;

        // Fault recovery accounting. The recovery *latency* is already in
        // the lengthened task durations above; the re-executed *work* is
        // scale-out-induced workload (the sequential reference never
        // re-executes), so it is charged into the overhead share.
        if let Some(fault) = &staged.fault {
            overhead += fault.summary.wasted_total();
        }

        // Lineage recomputation, attributed by the runtime from the
        // graph's dependency metadata: a node crash in stage k > 0 also
        // loses the node's resident stage-(k−1) partitions, which must
        // be recomputed from lineage before this stage's shuffle can
        // complete. Crashed nodes recompute in parallel, so the clock
        // pays the slowest node while Wo pays the total work.
        if let Some(lineage) = &staged.lineage {
            if ipso_obs::enabled() && lineage.makespan > 0.0 {
                ipso_obs::record_span(
                    "driver",
                    &format!("lineage-recompute-{}", stage.name),
                    "spark",
                    clock,
                    clock + lineage.makespan,
                );
                ipso_obs::counter_add("spark.lineage_recomputes", lineage.nodes);
                ipso_obs::gauge_add("overhead.lineage_recompute_s", lineage.work);
            }
            clock += lineage.makespan;
            overhead += lineage.work;
        }

        // 4. Shuffle boundary: each of the m receivers pulls total/m bytes
        // at incast-degraded goodput.
        if stage.shuffle_output_per_task > 0 {
            let total = stage.total_shuffle_output();
            let per_receiver = total as f64 / m as f64;
            let shuffle = per_receiver / spec.network.incast_goodput(m);
            if ipso_obs::enabled() {
                ipso_obs::record_span(
                    "driver",
                    &format!("shuffle-{}", stage.name),
                    "spark",
                    clock,
                    clock + shuffle,
                );
                // Incast degradation beyond undegraded worker goodput:
                // informational, not part of the engine's Wo accounting.
                let undegraded = per_receiver / spec.network.incast_goodput(1);
                ipso_obs::gauge_add("spark.shuffle_incast_excess_s", shuffle - undegraded);
            }
            clock += shuffle;
        }

        let stage_time = clock - submitted;
        stage_times.push(stage_time);
        ipso_obs::record_span("driver", &stage.name, "spark", submitted, clock);
        events.push(SparkEvent::StageCompleted {
            stage_id: stage_id as u32,
            stage_name: stage.name.clone(),
            num_tasks: stage.tasks,
            submission_time: submitted,
            completion_time: clock,
        });
        if let Some(fault) = staged.fault {
            fault_summaries.push(fault.summary);
        }
    }

    events.push(SparkEvent::ApplicationEnd { timestamp: clock });
    let log = write_event_log(&events).expect("event log serialization cannot fail");
    Ok(SparkRun {
        total_time: clock,
        stage_times,
        overhead_time: overhead,
        fault_summaries,
        log,
    })
}

/// The sequential execution reference (speedup numerator): the whole
/// workload streamed through one processing unit — no broadcast, no
/// dispatch, no first-wave cost, no stragglers (mean multiplier), no
/// cache spill (partitions are processed one at a time), shuffle data
/// repartitioned at local rates.
///
/// # Panics
///
/// Panics if the spec fails validation.
pub fn run_sequential_reference(spec: &SparkJobSpec) -> f64 {
    spec.validate().expect("invalid spark job spec");
    let mean_mult = spec.straggler.mean_multiplier();
    let mut total = 0.0;
    for stage in &spec.stages {
        let base = stage.task_compute + stage.input_bytes_per_task as f64 / INPUT_READ_RATE;
        total += stage.tasks as f64 * base * mean_mult;
        if stage.shuffle_output_per_task > 0 {
            // Local repartition at worker disk speed.
            total += stage.total_shuffle_output() as f64 / spec.cluster.worker.disk_bandwidth;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eventlog::parse_event_log;
    use crate::stage::StageSpec;
    use ipso_cluster::StragglerModel;

    fn simple_job(n_tasks: u32, m: u32) -> SparkJobSpec {
        SparkJobSpec::emr("test", n_tasks, m)
            .stage(StageSpec::new("map", n_tasks).with_task_compute(1.0))
    }

    #[test]
    fn single_stage_wall_clock_is_waves() {
        let mut job = simple_job(8, 4);
        job.straggler = StragglerModel::None;
        job.first_wave_cost = 0.0;
        job.executor_launch_cost = 0.0;
        let run = run_job(&job);
        // Two waves of 1 s tasks plus small dispatch.
        assert!(
            (2.0..2.3).contains(&run.total_time),
            "t = {}",
            run.total_time
        );
    }

    #[test]
    fn sequential_reference_sums_all_tasks() {
        let mut job = simple_job(8, 4);
        job.straggler = StragglerModel::None;
        let t = run_sequential_reference(&job);
        assert!((t - 8.0).abs() < 1e-9);
    }

    #[test]
    fn broadcast_counts_as_overhead() {
        let mut job = SparkJobSpec::emr("bcast", 4, 4).stage(
            StageSpec::new("iter", 4)
                .with_task_compute(0.5)
                .with_broadcast(50 * 1024 * 1024),
        );
        job.straggler = StragglerModel::None;
        let run = run_job(&job);
        // 4 serialized 50 MB unicasts at 250 MB/s ≈ 0.8 s.
        assert!(run.overhead_time > 0.7, "overhead = {}", run.overhead_time);
        assert!(run.overhead_fraction() > 0.3);
    }

    #[test]
    fn broadcast_overhead_grows_linearly_with_m() {
        let mk = |m: u32| {
            let mut j = SparkJobSpec::emr("bcast", m, m).stage(
                StageSpec::new("iter", m)
                    .with_task_compute(0.5)
                    .with_broadcast(20 * 1024 * 1024),
            );
            j.straggler = StragglerModel::None;
            j.first_wave_cost = 0.0;
            j
        };
        let o10 = run_job(&mk(10)).overhead_time;
        let o40 = run_job(&mk(40)).overhead_time;
        assert!(
            o40 > 3.5 * o10 && o40 < 4.5 * o10,
            "o10 = {o10}, o40 = {o40}"
        );
    }

    #[test]
    fn memory_pressure_slows_overloaded_executors() {
        let mk = |load: u32| {
            let m = 4;
            let n = m * load;
            let mut j = SparkJobSpec::emr("mem", n, m).stage(
                StageSpec::new("train", n)
                    .with_task_compute(1.0)
                    .with_input_bytes(1024 * 1024 * 1024)
                    .with_cached_input(true),
            );
            j.straggler = StragglerModel::None;
            j.first_wave_cost = 0.0;
            j
        };
        // Load 2: 2 GiB cached per executor — fits in 4 GiB. Load 8: 8 GiB
        // — spills.
        let fit = run_job(&mk(2));
        let spill = run_job(&mk(8));
        let per_task_fit = fit.total_time / 2.0;
        let per_task_spill = spill.total_time / 8.0;
        assert!(per_task_spill > 1.4 * per_task_fit);
    }

    #[test]
    fn event_log_reflects_stages() {
        let mut job = simple_job(4, 2).stage(StageSpec::new("agg", 2).with_task_compute(0.2));
        job.executor_launch_cost = 0.0;
        let run = run_job(&job);
        let (stages, duration) = parse_event_log(&run.log).unwrap();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].stage_name, "map");
        assert_eq!(stages[1].stage_name, "agg");
        let sum: f64 = stages.iter().map(|s| s.latency).sum();
        assert!((sum - run.total_time).abs() < 1e-9);
        assert_eq!(duration, Some(run.total_time));
    }

    #[test]
    fn executor_launch_is_linear_overhead() {
        let mk = |m: u32| {
            let mut j = simple_job(m, m);
            j.straggler = StragglerModel::None;
            j.first_wave_cost = 0.0;
            j
        };
        let o8 = run_job(&mk(8)).overhead_time;
        let o64 = run_job(&mk(64)).overhead_time;
        assert!(
            o64 > 6.0 * o8,
            "launch overhead should grow ~linearly: {o8} -> {o64}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let job = simple_job(16, 4);
        assert_eq!(run_job(&job), run_job(&job));
    }

    fn multi_stage_job() -> SparkJobSpec {
        SparkJobSpec::emr("multi", 32, 8)
            .stage(
                StageSpec::new("load", 32)
                    .with_task_compute(0.4)
                    .with_input_bytes(64 * 1024 * 1024)
                    .with_shuffle_output(8 * 1024 * 1024),
            )
            .stage(
                StageSpec::new("train", 32)
                    .with_task_compute(0.6)
                    .with_broadcast(10 * 1024 * 1024),
            )
            .stage(StageSpec::new("agg", 8).with_task_compute(0.2))
    }

    #[test]
    fn thread_count_never_changes_results() {
        let mut job = multi_stage_job();
        let baseline = run_job(&job);
        for threads in [0, 2, 3, 8] {
            job.engine.threads = threads;
            assert_eq!(run_job(&job), baseline, "threads = {threads}");
        }
    }

    #[test]
    fn observability_stream_is_identical_for_any_thread_count() {
        let _guard = obs_test_lock();
        let collect = |threads: usize| {
            ipso_obs::set_enabled(true);
            ipso_obs::reset();
            let mut job = multi_stage_job();
            job.engine.threads = threads;
            let run = run_job(&job);
            let events = ipso_obs::take_events();
            let metrics = ipso_obs::snapshot();
            ipso_obs::set_enabled(false);
            ipso_obs::reset();
            (run, events, metrics)
        };
        let sequential = collect(1);
        assert!(!sequential.1.is_empty());
        for threads in [2, 4] {
            assert_eq!(collect(threads), sequential, "threads = {threads}");
        }
    }

    /// Serializes tests that toggle the global obs recorder.
    fn obs_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_faults_leave_runs_untouched() {
        let job = multi_stage_job();
        let run = run_job(&job);
        assert!(run.fault_summaries.is_empty());
        assert_eq!(run, run_job(&job));
    }

    #[test]
    fn fault_injection_is_deterministic_and_grows_overhead() {
        let baseline = run_job(&multi_stage_job());
        let mut job = multi_stage_job();
        job.faults = ipso_cluster::FaultModel::flaky(0.3);
        job.recovery.max_attempts = 8;
        let a = run_job(&job);
        let b = run_job(&job);
        assert_eq!(a, b);
        assert_eq!(a.fault_summaries.len(), job.stages.len());
        let wasted: f64 = a.fault_summaries.iter().map(|s| s.wasted_total()).sum();
        assert!(wasted > 0.0, "p = 0.3 over 72 tasks must waste work");
        assert!(a.overhead_time >= baseline.overhead_time + wasted - 1e-9);
        assert!(a.total_time > baseline.total_time);
    }

    #[test]
    fn node_crash_in_a_later_stage_triggers_lineage_recompute() {
        let mut job = multi_stage_job();
        job.faults = ipso_cluster::FaultModel {
            node_crash_prob: 1.0,
            ..ipso_cluster::FaultModel::none()
        };
        let crash = run_job(&job);
        // Every node crashes in every stage: stages 1 and 2 must replay
        // their predecessors' partitions from lineage on top of the
        // directly lost outputs.
        let crash_wasted: f64 = crash.fault_summaries.iter().map(|s| s.wasted_total()).sum();
        assert!(
            crash.overhead_time > crash_wasted,
            "lineage recompute work must be charged beyond the per-stage waste: {} <= {}",
            crash.overhead_time,
            crash_wasted
        );
        let baseline = run_job(&multi_stage_job());
        assert!(crash.total_time > baseline.total_time);
    }

    #[test]
    fn exhausted_retries_surface_as_a_typed_error() {
        let mut job = multi_stage_job();
        job.faults = ipso_cluster::FaultModel::flaky(1.0);
        let err = try_run_job(&job).expect_err("certain failure must exhaust retries");
        assert!(matches!(
            err,
            ClusterError::RetriesExhausted { attempts: 4, .. }
        ));
    }

    #[test]
    fn fault_injection_is_thread_count_invariant() {
        let mut job = multi_stage_job();
        job.faults = ipso_cluster::FaultModel::flaky(0.25);
        job.recovery.max_attempts = 8;
        job.recovery.speculation = true;
        let baseline = run_job(&job);
        for threads in [0, 2, 4] {
            job.engine.threads = threads;
            assert_eq!(run_job(&job), baseline, "threads = {threads}");
        }
    }

    #[test]
    fn shuffle_adds_boundary_time() {
        let mut with = SparkJobSpec::emr("s", 8, 4).stage(
            StageSpec::new("map", 8)
                .with_task_compute(0.5)
                .with_shuffle_output(20 * 1024 * 1024),
        );
        with.straggler = StragglerModel::None;
        let mut without =
            SparkJobSpec::emr("s", 8, 4).stage(StageSpec::new("map", 8).with_task_compute(0.5));
        without.straggler = StragglerModel::None;
        assert!(run_job(&with).total_time > run_job(&without).total_time + 0.5);
    }
}
