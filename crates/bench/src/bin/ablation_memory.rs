//! Ablation: executor memory versus the optimal per-executor load.
//!
//! The paper concludes from Fig. 9 that "the optimal scale-out level, or
//! parallel degree m is determined by both the workload size and the
//! resource availability at individual executors". This ablation sweeps
//! executor memory and shows the best load level `N/m` moving with it:
//! more RAM shifts the spill boundary right and makes heavier loads
//! optimal.

use ipso_bench::{SweepRunner, Table};
use ipso_spark::sweep_fixed_time;
use ipso_workloads::bayes;

const GIB: u64 = 1024 * 1024 * 1024;

fn main() {
    let runner = SweepRunner::from_env();
    let loads = [1u32, 2, 4, 8, 16];
    let memories = [2 * GIB, 4 * GIB, 8 * GIB, 16 * GIB];
    let m = 16;

    let mut table = Table::new(
        "ablation_memory",
        &[
            "memory_gib",
            "load1",
            "load2",
            "load4",
            "load8",
            "load16",
            "best_load",
        ],
    );

    // Grid: (memory, load), memory-major so each memory's load series
    // reassembles contiguously.
    let grid: Vec<(u64, u32)> = memories
        .iter()
        .flat_map(|&mem| loads.iter().map(move |&load| (mem, load)))
        .collect();
    let mut all_speedups = runner
        .map(grid, |_ctx, (mem, load)| {
            let pts = sweep_fixed_time(
                |n, mm| {
                    let mut spec = bayes::job(n, mm);
                    spec.executor_memory = mem;
                    spec
                },
                load,
                &[m],
            );
            pts[0].speedup
        })
        .into_iter();

    println!("speedup at m = {m} by per-executor load level and executor memory:");
    for &mem in &memories {
        let speedups: Vec<f64> = all_speedups.by_ref().take(loads.len()).collect();
        let best_idx = speedups
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty")
            .0;
        let best_load = loads[best_idx];
        println!(
            "  {:2} GiB: best N/m = {:2} (S = {:.2})",
            mem / GIB,
            best_load,
            speedups[best_idx]
        );
        let mut row = vec![(mem / GIB) as f64];
        row.extend(&speedups);
        row.push(f64::from(best_load));
        table.push(row);
    }
    table.emit();

    let best_loads = table.values("best_load");
    assert!(
        best_loads.windows(2).all(|w| w[1] >= w[0]),
        "the optimal load level should be non-decreasing in executor memory: {best_loads:?}"
    );
    println!(
        "the optimal per-executor load follows the memory: the spill boundary\n\
         (load x 640 MB vs executor RAM) decides where Fig. 9's inversion happens."
    );
}
