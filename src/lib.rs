#![warn(missing_docs)]

//! Facade crate for the IPSO reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency. See the individual crates for full documentation.

pub mod cli;

pub use ipso as model;
pub use ipso_cluster as cluster;
pub use ipso_fit as fit;
pub use ipso_mapreduce as mapreduce;
pub use ipso_sim as sim;
pub use ipso_spark as spark;
pub use ipso_workloads as workloads;
