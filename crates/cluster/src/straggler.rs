//! Task-time noise (straggler) models.
//!
//! With barrier synchronization, the split phase finishes with its
//! *slowest* task, so task-time dispersion directly lowers speedups
//! (`E[max Tp,i(n)]` in paper Eq. 8). This module provides multiplicative
//! noise applied to a task's nominal duration.

use ipso_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::error::ClusterError;

/// Multiplicative task-time noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StragglerModel {
    /// No noise: every task takes exactly its nominal time.
    None,
    /// Uniform multiplier in `[1 − spread, 1 + spread]` — ordinary jitter
    /// from CPU/IO interference.
    Uniform {
        /// Half-width of the multiplier interval, in `(0, 1)`.
        spread: f64,
    },
    /// `1 + Exponential(mean_excess)` — occasional long tails.
    ExponentialTail {
        /// Mean of the additional (relative) delay.
        mean_excess: f64,
    },
    /// Pareto multiplier with minimum 1 — heavy-tailed stragglers as
    /// studied by [Zaharia et al., OSDI '08].
    Pareto {
        /// Tail index; larger is lighter-tailed. Must exceed 1.
        shape: f64,
    },
}

impl StragglerModel {
    /// The mild default used for the MapReduce case studies: ±5% jitter.
    pub fn mild() -> StragglerModel {
        StragglerModel::Uniform { spread: 0.05 }
    }

    /// A validated Pareto model. The variant's `shape` must exceed 1 —
    /// at `shape <= 1` the multiplier's mean diverges, which breaks
    /// [`StragglerModel::mean_multiplier`] calibration and every
    /// expectation built on it — so construction through this boundary
    /// rejects the parameter up front instead of letting a bad value
    /// surface later as a nonsensical negative mean or infinite
    /// expectation.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidParameter`] unless
    /// `shape` is finite and `> 1`.
    pub fn pareto(shape: f64) -> Result<StragglerModel, ClusterError> {
        let model = StragglerModel::Pareto { shape };
        model
            .validate()
            .map_err(|message| ClusterError::InvalidParameter {
                what: "pareto shape",
                message,
            })?;
        Ok(model)
    }

    /// Multiplier threshold above which a draw counts as a severe
    /// straggler in the metrics registry.
    pub const SEVERE_MULTIPLIER: f64 = 1.5;

    /// Draws a multiplier (≥ 0, usually near 1).
    pub fn multiplier(&self, rng: &mut SimRng) -> f64 {
        let m = match *self {
            StragglerModel::None => 1.0,
            StragglerModel::Uniform { spread } => rng.jitter(spread),
            StragglerModel::ExponentialTail { mean_excess } => 1.0 + rng.exponential(mean_excess),
            StragglerModel::Pareto { shape } => rng.pareto(1.0, shape),
        };
        if ipso_obs::enabled() {
            ipso_obs::counter_add("straggler.draws", 1);
            if m >= Self::SEVERE_MULTIPLIER {
                ipso_obs::counter_add("straggler.severe_draws", 1);
            }
        }
        m
    }

    /// Mean of the multiplier, used to keep nominal workloads calibrated.
    pub fn mean_multiplier(&self) -> f64 {
        match *self {
            StragglerModel::None => 1.0,
            StragglerModel::Uniform { .. } => 1.0,
            StragglerModel::ExponentialTail { mean_excess } => 1.0 + mean_excess,
            StragglerModel::Pareto { shape } => shape / (shape - 1.0),
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            StragglerModel::None => Ok(()),
            StragglerModel::Uniform { spread } => {
                if (0.0..1.0).contains(&spread) {
                    Ok(())
                } else {
                    Err("uniform spread must be in [0, 1)".into())
                }
            }
            StragglerModel::ExponentialTail { mean_excess } => {
                if mean_excess.is_finite() && mean_excess > 0.0 {
                    Ok(())
                } else {
                    Err("mean excess must be positive".into())
                }
            }
            StragglerModel::Pareto { shape } => {
                if shape.is_finite() && shape > 1.0 {
                    Ok(())
                } else {
                    Err("pareto shape must exceed 1".into())
                }
            }
        }
    }
}

impl Default for StragglerModel {
    fn default() -> Self {
        StragglerModel::mild()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_exact() {
        let mut rng = SimRng::seed_from(1);
        assert_eq!(StragglerModel::None.multiplier(&mut rng), 1.0);
        assert_eq!(StragglerModel::None.mean_multiplier(), 1.0);
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = SimRng::seed_from(2);
        let m = StragglerModel::Uniform { spread: 0.1 };
        for _ in 0..1000 {
            let v = m.multiplier(&mut rng);
            assert!((0.9..=1.1).contains(&v));
        }
    }

    #[test]
    fn exponential_tail_exceeds_one() {
        let mut rng = SimRng::seed_from(3);
        let m = StragglerModel::ExponentialTail { mean_excess: 0.2 };
        let mean: f64 = (0..20_000).map(|_| m.multiplier(&mut rng)).sum::<f64>() / 20_000.0;
        assert!((mean - 1.2).abs() < 0.02, "mean = {mean}");
        assert!((m.mean_multiplier() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn pareto_minimum_is_one() {
        let mut rng = SimRng::seed_from(4);
        let m = StragglerModel::Pareto { shape: 2.5 };
        for _ in 0..1000 {
            assert!(m.multiplier(&mut rng) >= 1.0);
        }
        assert!((m.mean_multiplier() - 2.5 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(StragglerModel::mild().validate().is_ok());
        assert!(StragglerModel::Uniform { spread: 1.0 }.validate().is_err());
        assert!(StragglerModel::ExponentialTail { mean_excess: 0.0 }
            .validate()
            .is_err());
        assert!(StragglerModel::Pareto { shape: 1.0 }.validate().is_err());
    }

    #[test]
    fn pareto_constructor_validates_the_shape() {
        assert_eq!(
            StragglerModel::pareto(2.5),
            Ok(StragglerModel::Pareto { shape: 2.5 })
        );
        for bad in [1.0, 0.5, -2.0, f64::NAN, f64::INFINITY] {
            let err = StragglerModel::pareto(bad).expect_err("shape must exceed 1");
            assert!(
                matches!(
                    err,
                    crate::ClusterError::InvalidParameter {
                        what: "pareto shape",
                        ..
                    }
                ),
                "unexpected error for shape {bad}: {err}"
            );
        }
    }

    #[test]
    fn heavier_tails_have_larger_maxima() {
        let mut rng = SimRng::seed_from(5);
        let sample_max = |m: StragglerModel, rng: &mut SimRng| {
            (0..2000).map(|_| m.multiplier(rng)).fold(0.0f64, f64::max)
        };
        let uniform_max = sample_max(StragglerModel::Uniform { spread: 0.05 }, &mut rng);
        let pareto_max = sample_max(StragglerModel::Pareto { shape: 1.5 }, &mut rng);
        assert!(pareto_max > uniform_max * 2.0);
    }
}
